#include "crfs/crfs.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "common/table.h"
#include "obs/chrome_trace.h"

namespace crfs {

namespace {

// Minimal JSON string escaper for the postmortem document (config strings
// may carry quotes/backslashes via user-supplied paths).
void append_json_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
}

}  // namespace

Result<std::unique_ptr<Crfs>> Crfs::mount(std::shared_ptr<BackendFs> backend, Config cfg) {
  if (backend == nullptr) return Error{EINVAL, "mount: null backend"};
  CRFS_RETURN_IF_ERROR(cfg.validate());
  return std::unique_ptr<Crfs>(new Crfs(std::move(backend), cfg));
}

Crfs::Crfs(std::shared_ptr<BackendFs> backend, Config cfg)
    : backend_(std::move(backend)),
      cfg_(cfg),
      trace_(cfg.trace_ring_events),
      events_(cfg.event_capacity),
      slow_(cfg.slow_exemplars,
            static_cast<std::uint64_t>(cfg.slow_capture_ms) * 1'000'000) {
  trace_.set_enabled(cfg_.enable_tracing);
  if (cfg_.epoch_tracking) {
    epochs_ = std::make_unique<obs::EpochTracker>(
        obs::EpochTracker::Options{
            .gap_ns = static_cast<std::uint64_t>(cfg_.epoch_gap_ms) * 1'000'000,
            .ledger_capacity = cfg_.epoch_ledger},
        &metrics_);
  }
  pool_ = std::make_unique<BufferPool>(cfg_.pool_size, cfg_.chunk_size, cfg_.pool_shards);

  // Resolve every hot-path metric once, before any worker thread exists;
  // after this point the registry is only touched through these handles
  // and snapshot().
  h_write_copy_ = &metrics_.histogram("crfs.write.copy_ns");
  h_pool_wait_ = &metrics_.histogram("crfs.write.pool_wait_ns");
  h_drain_wait_ = &metrics_.histogram("crfs.drain.wait_ns");
  h_pwrite_ = &metrics_.histogram("crfs.io.pwrite_ns");
  c_pwrite_bytes_ = &metrics_.counter("crfs.io.pwrite_bytes");
  c_pwrite_errors_ = &metrics_.counter("crfs.io.pwrite_errors");
  c_bypass_bytes_ = &metrics_.counter("crfs.write.bypass_bytes");
  c_m_reopens_ = &metrics_.counter("crfs.mount.reopens");
  c_m_partial_flushes_ = &metrics_.counter("crfs.mount.partial_flushes");
  c_m_full_flushes_ = &metrics_.counter("crfs.mount.full_flushes");
  c_m_chunk_steals_ = &metrics_.counter("crfs.mount.chunk_steals");
  c_m_bypass_writes_ = &metrics_.counter("crfs.mount.bypass_writes");
  queue_.set_wait_histogram(&metrics_.histogram("crfs.queue.wait_ns"));

  // Tiered staging (docs/PERFORMANCE.md "Tiered staging"): when the
  // backend is a TieredBackend, bind its crfs.tier.* telemetry and wire
  // the epoch ledger to the drain — a finalized epoch seals its drain
  // unit, and a remote-durable unit reports back into the ledger row.
  // Both listeners fire outside the respective locks (epoch.h/tier
  // contracts), so neither callback can deadlock against the other plane.
  tier_ = dynamic_cast<TieredBackend*>(backend_.get());
  if (tier_ != nullptr) {
    tier_->bind_obs(&metrics_, &events_);
    if (epochs_ != nullptr) {
      epochs_->set_finalize_listener(
          [this](const obs::EpochRecord& rec) { tier_->seal_epoch(rec.id); });
      tier_->set_drain_listener([this](std::uint64_t epoch_id, std::uint64_t bytes,
                                       std::uint64_t drain_ns, std::uint64_t end_ns) {
        if (epoch_id != 0) epochs_->attach_drain(epoch_id, bytes, drain_ns, end_ns);
      });
    }
  }

  // Durable journal (docs/OBSERVABILITY.md "Durable journal"). Constructed
  // before the IO pool and the knob plane: the event listener below
  // appends into it, and the journal_fsync_ms knob applies to it.
  if (!cfg_.journal_dir.empty()) {
    journal_ = std::make_unique<obs::Journal>(
        obs::JournalOptions{.dir = cfg_.journal_dir,
                            .segment_bytes = cfg_.journal_segment_bytes,
                            .max_bytes = cfg_.journal_max_bytes,
                            .flush_ms = cfg_.journal_flush_ms,
                            .fsync_ms = cfg_.journal_fsync_ms},
        &metrics_);
  }
  if (cfg_.slo_enabled()) {
    // validate() guarantees sample_ms > 0, so the tick observer below will
    // actually drive the monitor.
    slo_ = std::make_unique<obs::SloMonitor>(cfg_.slo_config(), &metrics_, &events_);
  }
  if (journal_ != nullptr || slo_ != nullptr) {
    slo_extract_ = std::make_unique<obs::SloExtractor>();
  }

  IoPoolObs io_obs;
  io_obs.pwrite_ns = h_pwrite_;
  io_obs.pwrite_bytes = c_pwrite_bytes_;
  io_obs.pwrite_errors = c_pwrite_errors_;
  io_obs.trace = &trace_;
  io_obs.events = &events_;
  io_obs.batch_chunks = &metrics_.histogram("crfs.io.batch_chunks");
  io_obs.coalesced_pwrites = &metrics_.counter("crfs.io.coalesced_pwrites");
  io_obs.durability_lag_ns = &metrics_.histogram("crfs.chunk.durability_lag_ns");
  io_obs.engine.inflight_depth = &metrics_.histogram("crfs.io.inflight_depth");
  io_obs.engine.sqe_batch = &metrics_.histogram("crfs.io.sqe_batch");
  io_obs.engine.cqe_wait_ns = &metrics_.histogram("crfs.io.cqe_wait_ns");
  io_obs.slow = &slow_;
  io_obs.slow_captured = &metrics_.counter("crfs.slow.captured");
  // The knob plane is built after the pool (define_knobs below); no job
  // can complete before the ctor finishes, but guard anyway.
  io_obs.knob_generation = [this]() -> std::uint64_t {
    return knobs_ != nullptr ? knobs_->generation() : 0;
  };

  // Flight recorder before the IO pool exists: the pool's run-complete
  // hook and the event listener below reference it, and nothing can fire
  // until the workers start.
  if (!cfg_.postmortem_path.empty()) {
    flight_ = std::make_unique<obs::FlightRecorder>(obs::FlightRecorder::Options{
        .path = cfg_.postmortem_path, .capacity = cfg_.postmortem_buffer});
    flight_->install_signal_handlers();
    io_obs.on_run_complete = [this] { refresh_flight(/*force=*/false); };
  }
  // The event listener is a single slot, so compose its consumers here:
  // the journal persists every structured event, the flight recorder
  // dumps on criticals. Error bursts and failed pwrites should leave a
  // dump even when the process survives them: refresh with the event
  // included, then write the file. Runs outside the EventBuffer lock.
  if (flight_ != nullptr || journal_ != nullptr) {
    events_.set_listener([this](const obs::Event& ev) {
      if (journal_ != nullptr) {
        journal_->append(obs::FrameType::kEvent, ev.ts_ns, ev.to_json());
      }
      if (flight_ != nullptr && ev.severity == obs::Severity::kCritical) {
        refresh_flight(/*force=*/true);
        (void)flight_->dump_now();
      }
    });
  }
  // Cap the dequeue batch at half the pool: a batch's chunks stay parked
  // (and its writers starved) until the whole coalesced write lands, so a
  // batch that could drain the entire pool would run the pipeline in
  // lockstep — fill all chunks, stall, write all chunks — instead of
  // overlapping writers with IO (docs/PERFORMANCE.md).
  const unsigned batch_cap =
      static_cast<unsigned>(std::max<std::size_t>(1, cfg_.num_chunks() / 2));
  io_pool_ = std::make_unique<IoThreadPool>(
      cfg_.io_threads, queue_, *pool_, *backend_, io_obs,
      std::min(cfg_.io_batch, batch_cap),
      IoEngineOptions{.requested = cfg_.io_engine, .uring_depth = cfg_.uring_depth},
      pool_->chunk_regions());

  // Restore-side read pipeline (docs/PERFORMANCE.md "Read path and
  // restore"): its own engine instance so restore reads never compete with
  // checkpoint SQEs for ring slots, same engine kind and fallback rules.
  ReadObs read_obs;
  read_obs.ops = &metrics_.counter("crfs.read.ops");
  read_obs.bytes = &metrics_.counter("crfs.read.bytes");
  read_obs.prefetch_issued = &metrics_.counter("crfs.read.prefetch_issued");
  read_obs.prefetch_hits = &metrics_.counter("crfs.read.prefetch_hits");
  read_obs.prefetch_wasted = &metrics_.counter("crfs.read.prefetch_wasted");
  read_obs.sync_preads = &metrics_.counter("crfs.read.sync_preads");
  read_obs.pread_ns = &metrics_.histogram("crfs.read.pread_ns");
  read_obs.inflight_depth = &metrics_.histogram("crfs.read.inflight_depth");
  // Slow-read forensics: same store and threshold as the write side, with
  // kind="read". A blocking restore read has no copy/queue chain — the
  // whole duration is device time.
  read_obs.on_slow = [this, c_slow = &metrics_.counter("crfs.slow.captured")](
                         const std::string& path, std::uint64_t offset, std::size_t len,
                         std::uint64_t t_start, std::uint64_t t_done) {
    const std::uint64_t dur = t_done - t_start;
    if (!slow_.over_threshold(dur, dur)) return;
    obs::SlowExemplar ex;
    ex.kind = "read";
    ex.path = path;
    ex.offset = offset;
    ex.len = len;
    ex.submit_ns = t_start;
    ex.durable_ns = t_done;
    ex.device_ns = dur;
    ex.total_lag_ns = dur;
    ex.queue_depth = queue_.depth();
    ex.free_chunks = pool_->free_chunks();
    ex.knob_generation = knobs_ != nullptr ? knobs_->generation() : 0;
    ex.engine = readahead_ != nullptr ? readahead_->engine_name() : "sync";
    slow_.capture(std::move(ex));
    c_slow->add(1);
  };
  readahead_ = std::make_unique<Readahead>(
      *backend_, *pool_,
      IoEngineOptions{.requested = cfg_.io_engine, .uring_depth = cfg_.uring_depth},
      pool_->chunk_regions(), IoEngineObs{}, std::move(read_obs), cfg_.epoch_ledger);
  readahead_on_.store(cfg_.readahead, std::memory_order_relaxed);
  readahead_window_.store(cfg_.readahead_window, std::memory_order_relaxed);

  // Occupancy gauges, sampled at snapshot time straight from the stages.
  metrics_.gauge_fn("crfs.pool.free_chunks", [this] {
    return static_cast<std::int64_t>(pool_->free_chunks());
  });
  metrics_.gauge_fn("crfs.pool.parked_chunks", [this] {
    return static_cast<std::int64_t>(pool_->in_use_chunks());
  });
  metrics_.gauge_fn("crfs.pool.contentions", [this] {
    return static_cast<std::int64_t>(pool_->contention_count());
  });
  metrics_.gauge_fn("crfs.queue.depth", [this] {
    return static_cast<std::int64_t>(queue_.depth());
  });
  metrics_.gauge_fn("crfs.io.in_flight", [this] {
    return static_cast<std::int64_t>(io_pool_->in_flight());
  });
  metrics_.gauge_fn("crfs.io.engine_inflight", [this] {
    return static_cast<std::int64_t>(io_pool_->engine_inflight());
  });
  metrics_.gauge_fn("crfs.files.open", [this] {
    return static_cast<std::int64_t>(table_.open_count());
  });
  // Self-health gauges (docs/OBSERVABILITY.md "Observing the observer"):
  // spans lost to ring wrap-around, and slow-exemplar buffer occupancy.
  metrics_.gauge_fn("crfs.trace.dropped_spans", [this] {
    return static_cast<std::int64_t>(trace_.dropped());
  });
  metrics_.gauge_fn("crfs.slow.exemplars", [this] {
    return static_cast<std::int64_t>(slow_.size());
  });

  // Live telemetry plane: background sampler + health rules. Construction
  // only here — the thread starts below, after the control plane is wired,
  // so the first tick already sees the tick observer.
  if (cfg_.sample_ms > 0) {
    health_ = std::make_unique<obs::HealthMonitor>(cfg_.health, events_);
    sampler_ = std::make_unique<obs::Sampler>(
        metrics_, obs::SamplerOptions{.ring_capacity = cfg_.sample_ring});
    sampler_->set_health_monitor(health_.get());
    sampler_->set_overrun_counter(&metrics_.counter("crfs.obs.sampler_overruns"));
  }

  // Control plane (docs/OBSERVABILITY.md "Control plane"): the knob plane
  // and decision log always exist (crfsctl tune works on any mount); the
  // feedback controller only with controller=on.
  define_knobs();
  decisions_ = std::make_unique<obs::DecisionLog>(cfg_.event_capacity, &metrics_, &events_);
  if (flight_ != nullptr) {
    // Every audited decision refreshes the postmortem (throttled), so a
    // crash shortly after a knob change still shows what was retuned.
    decisions_->set_listener([this](const obs::CtlDecision&) { refresh_flight(false); });
  }
  metrics_.gauge_fn("crfs.ctl.generation", [this] {
    return static_cast<std::int64_t>(knobs_->generation());
  });
  for (const KnobDef& def : knobs_->defs()) {
    metrics_.gauge_fn("crfs.knob." + def.name, [this, name = def.name] {
      return static_cast<std::int64_t>(knobs_->snapshot()->get(name, 0.0));
    });
  }
  if (cfg_.controller) {
    // validate() guarantees sample_ms > 0 here, so sampler_ exists.
    controller_ = std::make_unique<obs::Controller>(
        obs::ControllerConfig{}, *decisions_, &events_, &metrics_,
        [this](std::string_view name, double fallback) {
          return knobs_->snapshot()->get(name, fallback);
        },
        [this](std::string_view name, double requested) {
          const TuneResult r = knobs_->tune(name, requested);
          return obs::TuneOutcome{r.outcome, r.from, r.to, r.reason, r.generation};
        });
  }
  // The tick observer is a single slot shared by the controller, the SLO
  // monitor, and the journal; compose them here in a fixed order so the
  // journal frame for a tick reflects the same sample the monitor saw.
  if (sampler_ != nullptr && (controller_ != nullptr || slo_extract_ != nullptr)) {
    sampler_->set_tick_observer([this](const obs::Sample& s) {
      if (controller_ != nullptr) controller_->tick(s);
      if (slo_extract_ != nullptr) {
        const obs::SloInput in = slo_extract_->extract(s);
        if (slo_ != nullptr) slo_->observe(in);
        if (journal_ != nullptr) {
          journal_->append(obs::FrameType::kSample, s.ts_ns,
                           obs::journal_sample_json(s, in));
        }
      }
      journal_poll_cold_sinks();
    });
  }

  // Journal head: one meta frame describing the mount, the sampling
  // cadence, and (when set) the SLO targets — enough for an offline
  // `crfsctl slo` replay to rebuild the monitor after the process dies.
  if (journal_ != nullptr) {
    std::string meta = "{\"crfs_journal\":1,\"config\":\"";
    append_json_escaped(meta, cfg_.describe());
    meta += "\",\"sample_ms\":" + std::to_string(cfg_.sample_ms);
    meta += ",\"slo\":";
    meta += cfg_.slo_enabled() ? cfg_.slo_config().to_json() : std::string("null");
    meta += "}";
    journal_->set_meta(meta, obs::now_ns());
    journal_->start();
  }

  if (sampler_ != nullptr) sampler_->start(std::chrono::milliseconds(cfg_.sample_ms));

  // Seed the flight recorder so a crash before the first IO completion
  // still leaves a (mostly empty) parseable document.
  refresh_flight(/*force=*/true);
}

void Crfs::define_knobs() {
  knobs_ = std::make_unique<KnobPlane>();

  // pool_chunks: grow/shrink the buffer pool by whole chunks, ceiling from
  // tune_pool_max (0 = 4x the mount-time pool). Shrinks are best-effort
  // over free chunks, so the apply reports what it actually achieved. A
  // resize also re-clamps the effective IO batch against the new
  // half-the-pool cap (same invariant the mount ctor establishes).
  const std::size_t pool_cap_bytes =
      cfg_.tune_pool_max != 0 ? cfg_.tune_pool_max : cfg_.pool_size * 4;
  const std::size_t pool_cap_chunks =
      std::max<std::size_t>(1, pool_cap_bytes / cfg_.chunk_size);
  knobs_->define(
      KnobDef{"pool_chunks", 1.0, static_cast<double>(pool_cap_chunks), "chunks"},
      static_cast<double>(cfg_.num_chunks()),
      [this](double v, double* achieved, std::string* reason) {
        const std::size_t got = pool_->resize(static_cast<std::size_t>(v));
        if (got != static_cast<std::size_t>(v)) {
          *achieved = static_cast<double>(got);
          *reason = "shrink bounded by free chunks";
        }
        const unsigned cap = static_cast<unsigned>(std::max<std::size_t>(1, got / 2));
        const auto tuned_batch = static_cast<unsigned>(
            knobs_->snapshot()->get("io_batch", io_pool_->batch()));
        io_pool_->set_batch(std::min(tuned_batch, cap));
        return true;
      });

  // io_batch: chunks per work-queue drain. The half-the-pool cap is
  // enforced at apply time (and re-checked when pool_chunks changes).
  knobs_->define(
      KnobDef{"io_batch", 1.0, static_cast<double>(cfg_.tune_io_batch_max), "chunks"},
      static_cast<double>(io_pool_->batch()),
      [this](double v, double* achieved, std::string* reason) {
        const unsigned cap = static_cast<unsigned>(
            std::max<std::size_t>(1, pool_->total_chunks() / 2));
        const auto want = static_cast<unsigned>(v);
        const unsigned eff = std::min(want, cap);
        io_pool_->set_batch(eff);
        if (eff != want) {
          *achieved = static_cast<double>(eff);
          *reason = "capped at half the pool (" + std::to_string(cap) + " chunks)";
        }
        return true;
      });

  // uring_depth: soft in-flight cap per worker ring, re-armed on the next
  // submit window. Vetoed on the sync engine — there is no ring to re-arm.
  knobs_->define(
      KnobDef{"uring_depth", 1.0, 4096.0, "sqes"},
      static_cast<double>(cfg_.uring_depth),
      [this](double v, double* achieved, std::string* reason) {
        const unsigned eff = io_pool_->set_uring_depth(static_cast<unsigned>(v));
        if (eff == 0) {
          *reason = "io engine '" + std::string(io_pool_->engine_name()) + "' has no ring";
          return false;
        }
        *achieved = static_cast<double>(eff);
        return true;
      });

  // sample_ms: background sampler period, picked up on the next wakeup.
  knobs_->define(
      KnobDef{"sample_ms", 1.0, 10000.0, "ms"}, static_cast<double>(cfg_.sample_ms),
      [this](double v, double*, std::string* reason) {
        if (sampler_ == nullptr) {
          *reason = "sampler disabled (mount with sample_ms > 0)";
          return false;
        }
        sampler_->set_interval(std::chrono::milliseconds(static_cast<long long>(v)));
        return true;
      });

  // slow_pwrite_ms: the health rule's p99 threshold; 0 disables the rule.
  knobs_->define(
      KnobDef{"slow_pwrite_ms", 0.0, 100000.0, "ms"},
      static_cast<double>(cfg_.health.slow_pwrite_p99_ns) / 1e6,
      [this](double v, double*, std::string* reason) {
        if (health_ == nullptr) {
          *reason = "health monitor disabled (mount with sample_ms > 0)";
          return false;
        }
        health_->set_slow_pwrite_p99_ns(static_cast<std::uint64_t>(v * 1e6));
        return true;
      });

  // slow_capture_ms: the tail-latency exemplar threshold (durability lag
  // OR device time); 0 disables capture. Applied as one relaxed store.
  knobs_->define(
      KnobDef{"slow_capture_ms", 0.0, 100000.0, "ms"},
      static_cast<double>(cfg_.slow_capture_ms),
      [this](double v, double*, std::string*) {
        slow_.set_threshold_ns(static_cast<std::uint64_t>(v) * 1'000'000);
        return true;
      });

  // epoch_gap_ms: the auto-rotation quiet window of the epoch tracker.
  knobs_->define(
      KnobDef{"epoch_gap_ms", 1.0, 600000.0, "ms"},
      static_cast<double>(cfg_.epoch_gap_ms),
      [this](double v, double*, std::string* reason) {
        if (epochs_ == nullptr) {
          *reason = "epoch tracking disabled (no_epochs)";
          return false;
        }
        epochs_->set_gap_ns(static_cast<std::uint64_t>(v) * 1'000'000);
        return true;
      });

  // readahead: restore-prefetch master switch. One relaxed store; an
  // in-progress scan sees the change on its next read (already-parked
  // prefetch slots still serve, then the window stops topping up).
  knobs_->define(
      KnobDef{"readahead", 0.0, 1.0, "bool"}, cfg_.readahead ? 1.0 : 0.0,
      [this](double v, double*, std::string*) {
        readahead_on_.store(v >= 0.5, std::memory_order_relaxed);
        return true;
      });

  // readahead_window: chunk reads kept in flight per sequential restore
  // scan (the engine's own depth still caps it). Floor 1 gives the
  // controller's shed_readahead rule a halving path that never hits 0.
  knobs_->define(
      KnobDef{"readahead_window", 1.0, 1024.0, "chunks"},
      static_cast<double>(cfg_.readahead_window),
      [this](double v, double*, std::string*) {
        readahead_window_.store(static_cast<unsigned>(v), std::memory_order_relaxed);
        return true;
      });

  // journal_fsync_ms: durability cadence of the telemetry journal; 0 means
  // fsync only on rotation and shutdown. Picked up on the next flush.
  knobs_->define(
      KnobDef{"journal_fsync_ms", 0.0, 600000.0, "ms"},
      static_cast<double>(cfg_.journal_fsync_ms),
      [this](double v, double*, std::string* reason) {
        if (journal_ == nullptr) {
          *reason = "journal disabled (mount with journal=<dir>)";
          return false;
        }
        journal_->set_fsync_ms(static_cast<unsigned>(v));
        return true;
      });

  // drain_mbps: the tier's drain throttle toward the remote; 0 removes
  // the cap. One relaxed store, picked up by the next drain chunk. The
  // controller's shed_drain rule halves/restores this under remote
  // saturation. Vetoed on non-tiered mounts.
  knobs_->define(
      KnobDef{"drain_mbps", 0.0, 1e6, "MB/s"},
      tier_ != nullptr ? tier_->drain_mbps() : static_cast<double>(cfg_.drain_mbps),
      [this](double v, double*, std::string* reason) {
        if (tier_ == nullptr) {
          *reason = "tiered backend not mounted (stage=/remote=)";
          return false;
        }
        tier_->set_drain_mbps(v);
        return true;
      });

  // drain_parallel: helper threads splitting one drain unit's runs.
  // Picked up by the next unit drained.
  knobs_->define(
      KnobDef{"drain_parallel", 1.0, 64.0, "threads"},
      tier_ != nullptr ? static_cast<double>(tier_->drain_parallel())
                       : static_cast<double>(cfg_.drain_parallel),
      [this](double v, double*, std::string* reason) {
        if (tier_ == nullptr) {
          *reason = "tiered backend not mounted (stage=/remote=)";
          return false;
        }
        tier_->set_drain_parallel(static_cast<unsigned>(v));
        return true;
      });
}

void Crfs::journal_poll_cold_sinks() {
  // Epoch records and slow exemplars are pull-model stores with no change
  // hooks; journal whatever finalized since the last tick. Monotonic
  // totals guard against ring eviction: records()/snapshot() only hold the
  // most recent N, so index from the tail by how many we still owe.
  if (journal_ == nullptr) return;
  if (epochs_ != nullptr) {
    const std::uint64_t total = epochs_->total_finalized();
    if (total > journaled_epochs_) {
      const auto recs = epochs_->records();
      std::uint64_t owed = total - journaled_epochs_;
      if (owed > recs.size()) owed = recs.size();
      for (std::size_t i = recs.size() - static_cast<std::size_t>(owed);
           i < recs.size(); ++i) {
        journal_->append(obs::FrameType::kEpoch, recs[i].end_ns, recs[i].to_json());
      }
      journaled_epochs_ = total;
    }
  }
  const std::uint64_t captured = slow_.captured();
  if (captured > journaled_slow_) {
    const auto exemplars = slow_.snapshot();
    std::uint64_t owed = captured - journaled_slow_;
    if (owed > exemplars.size()) owed = exemplars.size();
    for (std::size_t i = exemplars.size() - static_cast<std::size_t>(owed);
         i < exemplars.size(); ++i) {
      journal_->append(obs::FrameType::kSlow, exemplars[i].durable_ns,
                       exemplars[i].to_json());
    }
    journaled_slow_ = captured;
  }
}

Crfs::~Crfs() {
  // Stop the sampler first: its gauge callbacks read the pool/queue/IO
  // stages this destructor is about to tear down.
  if (sampler_ != nullptr) sampler_->stop();
  // Flush buffered data of any files the application failed to close, so
  // unmounting never silently drops bytes.
  for (const HandleState& state : handles_.snapshot()) drain(state.entry);
  // Destroy the IO pool first: drains the queue, joins workers.
  io_pool_.reset();
  // The read pipeline parks pool chunks in its prefetch slots; tear it
  // down (draining its in-flight reads) before the pool shuts down.
  readahead_.reset();
  pool_->shutdown();
  // All chunk writes have landed: the final epoch record sees complete
  // durable counts. A clean unmount leaves no postmortem file (the
  // recorder only dumps on signals/critical events/dump_postmortem).
  // With a tier, finalize fires the seal listener, so the last epoch's
  // unit is drain-eligible before the flush below.
  if (epochs_ != nullptr) epochs_->finalize_open(obs::now_ns());
  // Drain the tier to remote-durable, then detach the drain listener:
  // backend_ (and its drain thread) outlives epochs_/metrics_ in member
  // order, so no callback may touch them after this point.
  if (tier_ != nullptr) {
    (void)tier_->flush();
    tier_->set_drain_listener(nullptr);
  }
  // Journal last: catch the epoch just finalized and any trailing slow
  // exemplars, then flush+fsync the tail so the segments outlive us.
  if (journal_ != nullptr) {
    journal_poll_cold_sinks();
    journal_->stop();
  }
}

Result<Crfs::FileHandle> Crfs::open(const std::string& path, OpenFlags flags) {
  // Epoch control file: writes carry "begin [label]" / "end" commands and
  // nothing reaches the backend. The dummy entry is detached (not in the
  // FileTable) so the handle machinery treats the slot as live.
  if (cfg_.epoch_tracking && path == cfg_.epoch_marker_path) {
    auto dummy = std::make_shared<FileEntry>(path, BackendFile{0});
    return handles_.insert(HandleState{std::move(dummy), flags.write, /*epoch_marker=*/true});
  }
  // Tune control file: same detached-dummy scheme, writes carry
  // "knob=value" commands for the knob plane.
  if (!cfg_.tune_marker_path.empty() && path == cfg_.tune_marker_path) {
    auto dummy = std::make_shared<FileEntry>(path, BackendFile{0});
    return handles_.insert(HandleState{std::move(dummy), flags.write,
                                       /*epoch_marker=*/false, /*tune_marker=*/true});
  }

  bool reopened = true;
  auto entry = table_.find_or_create(path, [&]() -> Result<std::shared_ptr<FileEntry>> {
    reopened = false;
    auto bf = backend_->open_file(path, flags);
    if (!bf.ok()) return bf.error();
    return std::make_shared<FileEntry>(path, bf.value());
  });
  if (!entry.ok()) return entry.error();
  if (reopened) {
    stats_.reopens.fetch_add(1, std::memory_order_relaxed);
    c_m_reopens_->add(1);
    if (flags.truncate && flags.write) {
      // Truncating reopen: discard buffered data and truncate the backend.
      auto& e = *entry.value();
      {
        std::lock_guard agg(e.agg_mu);
        e.current.reset();
        e.size_seen.store(0, std::memory_order_relaxed);
        e.write_gen.fetch_add(1, std::memory_order_release);
      }
      const std::uint64_t target = e.write_chunks.load(std::memory_order_acquire);
      e.wait_for_completion(target);
      CRFS_RETURN_IF_ERROR(backend_->truncate(e.backend_file(), 0));
    }
  }

  // Epoch attribution is resolved once here (cold path) and cached on the
  // entry; write() and the IO workers never touch the tracker.
  if (epochs_ != nullptr && flags.write) {
    auto epoch = epochs_->on_open(path, obs::now_ns());
    std::lock_guard agg(entry.value()->agg_mu);
    entry.value()->epoch = std::move(epoch);
  }

  return handles_.insert(HandleState{entry.value(), flags.write});
}

Result<std::shared_ptr<FileEntry>> Crfs::entry_for(FileHandle handle) {
  auto state = handles_.get(handle);
  if (!state) return Error{EBADF, "unknown CRFS handle"};
  return std::move(state->entry);
}

Result<HandleState> Crfs::state_for(FileHandle handle) {
  auto state = handles_.get(handle);
  if (!state) return Error{EBADF, "unknown CRFS handle"};
  return std::move(*state);
}

std::uint64_t Crfs::flush_current_locked(const std::shared_ptr<FileEntry>& entry,
                                         bool partial) {
  if (entry->current != nullptr && !entry->current->empty()) {
    obs::TraceSpan span(trace_, "flush");
    auto chunk = std::move(entry->current);
    span.set_trace_id(chunk->trace_id());
    entry->write_chunks.fetch_add(1, std::memory_order_acq_rel);
    if (partial) {
      stats_.partial_flushes.fetch_add(1, std::memory_order_relaxed);
      c_m_partial_flushes_->add(1);
    } else {
      stats_.full_flushes.fetch_add(1, std::memory_order_relaxed);
      c_m_full_flushes_->add(1);
    }
    // Capture the epoch under agg_mu (the only lock that guards the
    // field); the IO threads attribute through the job's copy, never
    // through the entry.
    WriteJob job{entry, std::move(chunk), entry->epoch};
    if (job.epoch != nullptr) job.epoch->chunks.fetch_add(1, std::memory_order_relaxed);
    queue_.push(std::move(job));
  } else if (entry->current != nullptr) {
    // Empty chunk: just return it to the pool.
    pool_->release(std::move(entry->current));
  }
  return entry->write_chunks.load(std::memory_order_acquire);
}

Status Crfs::write(FileHandle handle, std::span<const std::byte> data, std::uint64_t offset) {
  auto state_result = state_for(handle);
  if (!state_result.ok()) return state_result.error();
  if (!state_result.value().writable) return Error{EBADF, "write on read-only handle"};
  if (state_result.value().epoch_marker) return handle_epoch_marker(data);
  if (state_result.value().tune_marker) return handle_tune_marker(data);
  const std::shared_ptr<FileEntry>& entry_sp = state_result.value().entry;
  FileEntry& entry = *entry_sp;

  const std::size_t nbytes = data.size();
  stats_.app_writes.fetch_add(1, std::memory_order_relaxed);
  stats_.app_bytes.fetch_add(nbytes, std::memory_order_relaxed);

  // Per-stage accounting: one clock pair for the whole call, plus slow-path
  // clocks inside acquire_chunk only when the pool actually blocks. The
  // difference is the aggregation (copy + enqueue) cost the paper attributes
  // to CRFS itself; the pool wait is backpressure from the backend.
  const std::uint64_t t0 = obs::now_ns();
  obs::TraceSpan span(trace_, "write");
  std::uint64_t pool_wait_ns = 0;

  std::lock_guard agg(entry.agg_mu);

  // Large-write copy bypass (docs/PERFORMANCE.md): a chunk-size-or-larger
  // write at/past the file's high-water mark goes straight to the backend,
  // skipping the memcpy and the pool round-trip. Safe exactly because
  // size_seen is the max append point this file has ever reached (only
  // advanced under agg_mu): every buffered, queued, or in-flight chunk
  // lies entirely below it, so the direct write cannot race a chunk write
  // for the same byte range — ordering is irrelevant for disjoint ranges.
  // current == nullptr keeps the common partial-chunk stream on the
  // aggregation path (a parked chunk may end exactly at `offset`, and
  // flushing it here just to bypass would cost more than the memcpy).
  if (cfg_.large_write_bypass && nbytes >= cfg_.chunk_size && entry.current == nullptr &&
      offset >= entry.size_seen.load(std::memory_order_relaxed)) {
    const Status st = backend_->pwrite(entry.backend_file(), data, offset);
    const std::uint64_t t_done = obs::now_ns();
    h_pwrite_->record(t_done - t0);
    if (!st.ok()) {
      c_pwrite_errors_->add(1);
      if (entry.epoch != nullptr) {
        entry.epoch->io_errors.fetch_add(1, std::memory_order_relaxed);
      }
      // The app thread sees the failure synchronously — no sticky error
      // needed, nothing was buffered.
      return st;
    }
    c_pwrite_bytes_->add(nbytes);
    c_bypass_bytes_->add(nbytes);
    stats_.bypass_writes.fetch_add(1, std::memory_order_relaxed);
    c_m_bypass_writes_->add(1);
    if (entry.epoch != nullptr) {
      entry.epoch->app_writes.fetch_add(1, std::memory_order_relaxed);
      entry.epoch->bytes.fetch_add(nbytes, std::memory_order_relaxed);
      entry.epoch->backend_writes.fetch_add(1, std::memory_order_relaxed);
      // Durable immediately, with zero queue residency; note this counts
      // as one chunk-equivalent backend write, so epoch aggregation
      // ratios reflect that bypassed bytes were never aggregated.
      entry.epoch->record_chunk_durable(nbytes, t_done - t0, 0);
      // Critical path: the whole call was device time (direct pwrite).
      entry.epoch->device_ns.fetch_add(t_done - t0, std::memory_order_relaxed);
    }
    const std::uint64_t end = offset + nbytes;
    std::uint64_t seen = entry.size_seen.load(std::memory_order_relaxed);
    while (end > seen &&
           !entry.size_seen.compare_exchange_weak(seen, end, std::memory_order_relaxed)) {
    }
    entry.write_gen.fetch_add(1, std::memory_order_release);
    return {};
  }

  while (!data.empty()) {
    // Non-contiguous write: flush the current chunk and restart at the new
    // offset. Checkpoint streams are sequential so this is the cold path.
    if (entry.current != nullptr && entry.current->append_point() != offset) {
      flush_current_locked(entry_sp, /*partial=*/true);
    }
    if (entry.current == nullptr) {
      const std::uint64_t wait_before = pool_wait_ns;
      entry.current = acquire_chunk(entry, offset, &pool_wait_ns);
      if (entry.current == nullptr) return Error{EIO, "CRFS shutting down"};
      // Chunk-lifecycle ledger: birth = first copy-in. Reuses this call's
      // t0 instead of a fresh clock read; the IO pool derives durability
      // lag (copy-in -> pwrite-complete) from it.
      entry.current->set_born_ns(t0);
      // Causal chain: one relaxed fetch_add per chunk; the id rides the
      // chunk across the queue so the IO worker's spans stitch to this
      // call's. The stall is the wait THIS chunk's acquisition cost, so
      // the chunk's fill window (born -> enqueue) splits into stall+copy.
      const std::uint64_t id = next_trace_id_.fetch_add(1, std::memory_order_relaxed);
      entry.current->set_trace_id(id);
      entry.current->set_stall_ns(pool_wait_ns - wait_before);
      span.set_trace_id(id);
    }
    const std::size_t consumed = entry.current->append(data);
    data = data.subspan(consumed);
    offset += consumed;
    if (entry.current->full()) {
      flush_current_locked(entry_sp, /*partial=*/false);
    }
  }

  const std::uint64_t elapsed = obs::now_ns() - t0;
  h_write_copy_->record(elapsed > pool_wait_ns ? elapsed - pool_wait_ns : 0);
  if (pool_wait_ns > 0) h_pool_wait_->record(pool_wait_ns);

  // Epoch attribution: three relaxed fetch_adds, still under agg_mu (the
  // lock that guards the epoch pointer itself).
  if (entry.epoch != nullptr) {
    entry.epoch->app_writes.fetch_add(1, std::memory_order_relaxed);
    entry.epoch->bytes.fetch_add(nbytes, std::memory_order_relaxed);
    if (pool_wait_ns > 0) {
      entry.epoch->pool_stall_ns.fetch_add(pool_wait_ns, std::memory_order_relaxed);
    }
    // Critical-path attribution: the same copy-stage quantity the
    // crfs.write.copy_ns histogram records, charged to the epoch.
    entry.epoch->copy_ns.fetch_add(elapsed > pool_wait_ns ? elapsed - pool_wait_ns : 0,
                                   std::memory_order_relaxed);
  }

  // Track the furthest byte written for getattr on still-buffered files.
  std::uint64_t seen = entry.size_seen.load(std::memory_order_relaxed);
  while (offset > seen &&
         !entry.size_seen.compare_exchange_weak(seen, offset, std::memory_order_relaxed)) {
  }
  // Invalidate any read-side prefetch cache for this file (still under
  // agg_mu, the lock that orders writes).
  entry.write_gen.fetch_add(1, std::memory_order_release);
  return {};
}

std::unique_ptr<Chunk> Crfs::acquire_chunk(FileEntry& entry, std::uint64_t offset,
                                           std::uint64_t* wait_ns) {
  // Fast path: a chunk is free, or becomes free quickly (IO threads never
  // take agg_mu, so they keep draining while we hold this entry's lock).
  if (auto chunk = pool_->try_acquire(offset)) return chunk;

  // Slow path only from here on: clocks and spans are off the fast path.
  const std::uint64_t t0 = obs::now_ns();
  obs::TraceSpan span(trace_, "pool_wait");
  for (;;) {
    // Normal backpressure first: IO threads are draining, a chunk will
    // come back. Only when the whole pipeline is PROVABLY idle — nothing
    // queued, nothing being written — can every chunk be parked as some
    // other file's partial current chunk, which would deadlock.
    if (auto chunk = pool_->acquire_for(offset, std::chrono::milliseconds(10))) {
      *wait_ns += obs::now_ns() - t0;
      return chunk;
    }
    if (pool_->is_shutdown()) {
      *wait_ns += obs::now_ns() - t0;
      return nullptr;
    }
    if (pool_->free_chunks() == 0 && queue_.depth() == 0 && io_pool_->in_flight() == 0) {
      // Exhaustion rescue: flush the fullest parked partial to the work
      // queue ("steal"). try_lock keeps this deadlock-free: two writers
      // can never wait on each other's agg_mu.
      std::shared_ptr<FileEntry> victim;
      std::size_t victim_fill = 0;
      for (const auto& other : table_.snapshot()) {
        if (other.get() == &entry) continue;
        std::unique_lock other_lock(other->agg_mu, std::try_to_lock);
        if (!other_lock.owns_lock()) continue;
        if (other->current != nullptr && other->current->fill() > victim_fill) {
          victim = other;
          victim_fill = other->current->fill();
        }
      }
      if (victim != nullptr) {
        std::unique_lock victim_lock(victim->agg_mu, std::try_to_lock);
        if (victim_lock.owns_lock() && victim->current != nullptr &&
            !victim->current->empty()) {
          flush_current_locked(victim, /*partial=*/true);
          stats_.chunk_steals.fetch_add(1, std::memory_order_relaxed);
          c_m_chunk_steals_->add(1);
        }
      }
    }
  }
}

void Crfs::drain(const std::shared_ptr<FileEntry>& entry) {
  std::uint64_t target;
  std::shared_ptr<obs::EpochState> epoch;
  {
    std::lock_guard agg(entry->agg_mu);
    target = flush_current_locked(entry, /*partial=*/true);
    epoch = entry->epoch;  // captured under the lock that guards it
  }
  // Drain wait: how long close()/fsync() block on the pipeline emptying —
  // the paper's §IV-C reconciliation of write vs. complete chunk counts.
  const std::uint64_t t0 = obs::now_ns();
  obs::TraceSpan span(trace_, "drain");
  if (trace_.enabled()) span.set_tag(trace_.intern(entry->path()));
  entry->wait_for_completion(target);
  const std::uint64_t waited = obs::now_ns() - t0;
  h_drain_wait_->record(waited);
  // Critical path: the fsync/close barrier. NOTE this overlaps the
  // background stages (queue/submit/device run while we wait), so it is
  // reported beside, not summed into, the chunk-lifetime decomposition.
  if (epoch != nullptr && waited > 0) {
    epoch->barrier_ns.fetch_add(waited, std::memory_order_relaxed);
  }
}

Result<std::size_t> Crfs::read(FileHandle handle, std::span<std::byte> data,
                               std::uint64_t offset) {
  auto state_result = state_for(handle);
  if (!state_result.ok()) return state_result.error();
  if (state_result.value().epoch_marker || state_result.value().tune_marker) {
    return std::size_t{0};  // control files read as empty
  }
  const std::shared_ptr<FileEntry>& entry_sp = state_result.value().entry;
  FileEntry& entry = *entry_sp;

  if (cfg_.flush_before_read) {
    // Barrier THIS file's pending chunks only: flush the dirty current
    // chunk (if any), then wait until everything already handed to the
    // work queue for this file is durable. A clean file — nothing
    // buffered, nothing in flight — short-circuits with two atomic loads;
    // other files' traffic is never waited on.
    std::uint64_t target;
    std::shared_ptr<obs::EpochState> epoch;
    {
      std::lock_guard agg(entry.agg_mu);
      if (entry.current != nullptr && !entry.current->empty()) {
        target = flush_current_locked(entry_sp, /*partial=*/true);
      } else {
        target = entry.write_chunks.load(std::memory_order_acquire);
      }
      epoch = entry.epoch;
    }
    if (entry.complete_chunks.load(std::memory_order_acquire) < target) {
      const std::uint64_t t0 = obs::now_ns();
      obs::TraceSpan span(trace_, "read_barrier");
      entry.wait_for_completion(target);
      const std::uint64_t waited = obs::now_ns() - t0;
      h_drain_wait_->record(waited);
      if (epoch != nullptr && waited > 0) {
        epoch->barrier_ns.fetch_add(waited, std::memory_order_relaxed);
      }
    }
  }

  stats_.reads.fetch_add(1, std::memory_order_relaxed);
  auto r = readahead_->read(entry_sp, data, offset,
                            readahead_on_.load(std::memory_order_relaxed),
                            readahead_window_.load(std::memory_order_relaxed));
  if (r.ok()) stats_.read_bytes.fetch_add(r.value(), std::memory_order_relaxed);
  return r;
}

Status Crfs::fsync(FileHandle handle) {
  auto state_result = state_for(handle);
  if (!state_result.ok()) return state_result.error();
  if (state_result.value().epoch_marker || state_result.value().tune_marker) {
    return {};  // nothing buffered, no backend
  }
  const std::shared_ptr<FileEntry>& entry_sp = state_result.value().entry;

  drain(entry_sp);
  if (auto err = entry_sp->take_error()) return *err;
  return backend_->fsync(entry_sp->backend_file());
}

Status Crfs::close(FileHandle handle) {
  auto removed = handles_.remove(handle);
  if (!removed) return Error{EBADF, "close: unknown CRFS handle"};
  if (removed->epoch_marker || removed->tune_marker) {
    return {};  // control file: nothing to flush
  }
  std::shared_ptr<FileEntry> entry = std::move(removed->entry);

  // Paper §IV-C: enqueue remaining data, then block until the complete
  // chunk count equals the write chunk count.
  drain(entry);

  // The epoch's open/close correlation window advances only after the
  // drain: a "closed" file has all its chunks enqueued (durability still
  // trails via the in-flight WriteJobs' epoch pointers).
  if (epochs_ != nullptr && removed->writable) {
    epochs_->on_close(entry->path(), obs::now_ns());
  }

  Status result;
  if (auto err = entry->take_error()) result = *err;

  if (auto last = table_.release(entry->path())) {
    // Final close: drop the read-side prefetch cache (finalizing the
    // restore-ledger row) and release both engines' registered-fd slots
    // before the fd number can be reused by a later open. All of the
    // file's writes have drained above, so no in-flight SQE references it.
    readahead_->evict(last.get());
    readahead_->forget_file(last->backend_file());
    io_pool_->forget_backend_file(last->backend_file());
    const Status close_status = backend_->close_file(last->backend_file());
    if (result.ok() && !close_status.ok()) result = close_status;
  }
  return result;
}

Result<BackendStat> Crfs::getattr(const std::string& path) {
  auto st = backend_->stat(path);
  if (!st.ok()) return st;
  // A still-open file may have bytes buffered in its current chunk or in
  // flight in the work queue; report the logical size the app produced.
  if (auto entry = table_.find(path)) {
    const std::uint64_t seen = entry->size_seen.load(std::memory_order_relaxed);
    if (seen > st.value().size) st.value().size = seen;
  }
  return st;
}

Status Crfs::mkdir(const std::string& path) { return backend_->mkdir(path); }
Status Crfs::rmdir(const std::string& path) { return backend_->rmdir(path); }
Status Crfs::unlink(const std::string& path) { return backend_->unlink(path); }

Status Crfs::rename(const std::string& from, const std::string& to) {
  // Flush buffered data so the renamed file is complete under its new name.
  if (auto entry = table_.find(from)) drain(entry);
  return backend_->rename(from, to);
}

Result<std::vector<std::string>> Crfs::list_dir(const std::string& path) {
  return backend_->list_dir(path);
}

std::string Crfs::stats_report() const {
  const MountStats::Snapshot s = stats_.snapshot();
  std::string out = "CRFS pipeline stats (" + cfg_.describe() +
                    ", engine=" + io_pool_->engine_name() + ")\n";
  TextTable mount({"Mount counter", "Value"});
  mount.add_row({"app_writes", std::to_string(s.app_writes)});
  mount.add_row({"app_bytes", std::to_string(s.app_bytes)});
  mount.add_row({"full_flushes", std::to_string(s.full_flushes)});
  mount.add_row({"partial_flushes", std::to_string(s.partial_flushes)});
  mount.add_row({"reopens", std::to_string(s.reopens)});
  mount.add_row({"chunk_steals", std::to_string(s.chunk_steals)});
  mount.add_row({"bypass_writes", std::to_string(s.bypass_writes)});
  mount.add_row({"reads", std::to_string(s.reads)});
  mount.add_row({"read_bytes", std::to_string(s.read_bytes)});
  out += mount.render();
  out += "\n";
  out += metrics_.snapshot().render_table();
  if (tier_ != nullptr) {
    const TierStats t = tier_->tier_stats();
    TextTable tt({"Tier", "Value"});
    tt.add_row({"stage_used", std::to_string(t.stage_used)});
    tt.add_row({"stage_cap", std::to_string(t.stage_cap)});
    tt.add_row({"staged_bytes", std::to_string(t.staged_bytes)});
    tt.add_row({"drained_bytes", std::to_string(t.drained_bytes)});
    tt.add_row({"spill_bytes", std::to_string(t.spill_bytes)});
    tt.add_row({"pending_units", std::to_string(t.pending_units)});
    tt.add_row({"units_evicted", std::to_string(t.units_evicted)});
    tt.add_row({"stalls", std::to_string(t.stalls)});
    tt.add_row({"retries", std::to_string(t.retries)});
    char num[64];
    std::snprintf(num, sizeof(num), "%.3f", static_cast<double>(t.drain_lag_ns) / 1e6);
    tt.add_row({"drain_lag_ms", num});
    out += "\n";
    out += tt.render();
  }
  if (epochs_ != nullptr) {
    auto recs = epochs_->records();
    if (auto open = epochs_->open_epoch(obs::now_ns())) recs.push_back(*open);
    if (!recs.empty()) {
      TextTable ep({"Epoch", "Label", "Files", "Bytes", "Chunks", "Agg ratio",
                    "BW (MiB/s)", "Lag max (ms)", "Drained", "Drain BW", "State"});
      char num[64];
      for (const auto& r : recs) {
        std::snprintf(num, sizeof(num), "%.2f", r.aggregation_ratio());
        std::string agg = num;
        std::snprintf(num, sizeof(num), "%.1f", r.effective_bw() / (1024.0 * 1024.0));
        std::string bw = num;
        std::snprintf(num, sizeof(num), "%.3f",
                      static_cast<double>(r.durability_lag_max_ns) / 1e6);
        std::string lag = num;
        std::snprintf(num, sizeof(num), "%.1f", r.drain_bw() / (1024.0 * 1024.0));
        ep.add_row({std::to_string(r.id), r.label, std::to_string(r.files),
                    std::to_string(r.bytes), std::to_string(r.chunks), agg, bw, lag,
                    std::to_string(r.drained_bytes), num,
                    r.open ? "open" : "done"});
      }
      out += "\n";
      out += ep.render();
    }
  }
  const auto restores = readahead_->ledger_snapshot();
  if (!restores.empty()) {
    TextTable rt({"Restore", "Bytes", "Ops", "Issued", "Hits", "Wasted", "Sync",
                  "TTFB (ms)", "BW (MiB/s)", "State"});
    char num[64];
    for (const auto& r : restores) {
      std::snprintf(num, sizeof(num), "%.3f", static_cast<double>(r.ttfb_ns) / 1e6);
      std::string ttfb = num;
      const std::uint64_t span_ns =
          r.last_read_ns > r.first_read_ns ? r.last_read_ns - r.first_read_ns : 0;
      const double bw = span_ns > 0
                            ? static_cast<double>(r.bytes) * 1e9 /
                                  (static_cast<double>(span_ns) * 1024.0 * 1024.0)
                            : 0.0;
      std::snprintf(num, sizeof(num), "%.1f", bw);
      rt.add_row({r.path, std::to_string(r.bytes), std::to_string(r.ops),
                  std::to_string(r.prefetch_issued), std::to_string(r.prefetch_hits),
                  std::to_string(r.prefetch_wasted), std::to_string(r.sync_preads), ttfb,
                  num, r.active ? "open" : "done"});
    }
    out += "\n";
    out += rt.render();
  }
  const auto events = events_.snapshot();
  if (!events.empty()) {
    TextTable ev({"Severity", "Rule", "Detail"});
    for (const auto& e : events) {
      ev.add_row({obs::severity_name(e.severity), e.rule, e.message});
    }
    out += "\n";
    out += ev.render();
  }
  return out;
}

std::string Crfs::stats_json() const {
  const MountStats::Snapshot s = stats_.snapshot();
  // schema_version counts breaking shape changes of this document (and of
  // the postmortem, which embeds the same sections): 2 = control plane,
  // 3 = durable journal + SLO burn rates.
  std::string out = "{\"schema_version\":3,\"mount\":{";
  out += "\"app_writes\":" + std::to_string(s.app_writes);
  out += ",\"app_bytes\":" + std::to_string(s.app_bytes);
  out += ",\"full_flushes\":" + std::to_string(s.full_flushes);
  out += ",\"partial_flushes\":" + std::to_string(s.partial_flushes);
  out += ",\"reopens\":" + std::to_string(s.reopens);
  out += ",\"chunk_steals\":" + std::to_string(s.chunk_steals);
  out += ",\"bypass_writes\":" + std::to_string(s.bypass_writes);
  out += ",\"reads\":" + std::to_string(s.reads);
  out += ",\"read_bytes\":" + std::to_string(s.read_bytes);
  out += ",\"io_engine\":\"" + std::string(io_pool_->engine_name()) + "\"";
  out += ",\"io_engine_requested\":\"" + std::string(io_engine_name(cfg_.io_engine)) + "\"";
  out += ",\"read_engine\":\"" + std::string(readahead_->engine_name()) + "\"";
  out += "},\"pipeline\":" + metrics_.snapshot().to_json();
  out += ",\"events\":" + obs::events_to_json(events_.snapshot());
  out += ",\"slow\":" + slow_.to_json();
  out += ",\"restores\":[";
  {
    bool first = true;
    for (const auto& r : readahead_->ledger_snapshot()) {
      if (!first) out += ",";
      first = false;
      out += "{\"path\":\"";
      append_json_escaped(out, r.path);
      out += "\",\"bytes\":" + std::to_string(r.bytes);
      out += ",\"ops\":" + std::to_string(r.ops);
      out += ",\"prefetch_issued\":" + std::to_string(r.prefetch_issued);
      out += ",\"prefetch_hits\":" + std::to_string(r.prefetch_hits);
      out += ",\"prefetch_wasted\":" + std::to_string(r.prefetch_wasted);
      out += ",\"sync_preads\":" + std::to_string(r.sync_preads);
      out += ",\"ttfb_ns\":" + std::to_string(r.ttfb_ns);
      out += ",\"first_read_ns\":" + std::to_string(r.first_read_ns);
      out += ",\"last_read_ns\":" + std::to_string(r.last_read_ns);
      out += ",\"active\":";
      out += r.active ? "true" : "false";
      out += "}";
    }
  }
  out += "]";
  if (epochs_ != nullptr) {
    out += ",\"epochs\":" + obs::epochs_to_json(epochs_->records());
    const auto open = epochs_->open_epoch(obs::now_ns());
    out += ",\"epoch_open\":";
    out += open.has_value() ? open->to_json() : std::string("null");
    out += ",\"epochs_completed\":" + std::to_string(epochs_->total_finalized());
  }
  if (sampler_ != nullptr) {
    out += ",\"samples_taken\":" + std::to_string(sampler_->samples_taken());
  }
  out += ",\"controller\":" + controller_json();
  out += ",\"journal\":" + journal_json();
  out += ",\"slo\":" + slo_json();
  out += ",\"tier\":" + tier_json();
  out += "}";
  return out;
}

// -- Checkpoint epochs ------------------------------------------------------

Status Crfs::epoch_begin(const std::string& label) {
  if (epochs_ == nullptr) return Error{EINVAL, "epoch tracking disabled (no_epochs)"};
  epochs_->begin(label, obs::now_ns());
  refresh_flight(/*force=*/true);
  return {};
}

Status Crfs::epoch_end() {
  if (epochs_ == nullptr) return Error{EINVAL, "epoch tracking disabled (no_epochs)"};
  epochs_->end(obs::now_ns());
  refresh_flight(/*force=*/true);
  return {};
}

std::vector<obs::EpochRecord> Crfs::epochs() const {
  if (epochs_ == nullptr) return {};
  return epochs_->records();
}

std::optional<obs::EpochRecord> Crfs::open_epoch() const {
  if (epochs_ == nullptr) return std::nullopt;
  return epochs_->open_epoch(obs::now_ns());
}

Status Crfs::handle_epoch_marker(std::span<const std::byte> data) {
  std::string cmd(reinterpret_cast<const char*>(data.data()), data.size());
  const auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  while (!cmd.empty() && is_space(cmd.front())) cmd.erase(cmd.begin());
  while (!cmd.empty() && is_space(cmd.back())) cmd.pop_back();

  if (cmd == "end") return epoch_end();
  if (cmd == "begin") return epoch_begin("");
  if (cmd.rfind("begin", 0) == 0 && cmd.size() > 5 && is_space(cmd[5])) {
    std::string label = cmd.substr(6);
    while (!label.empty() && is_space(label.front())) label.erase(label.begin());
    return epoch_begin(label);
  }
  return Error{EINVAL, "epoch marker: expected \"begin [label]\" or \"end\", got \"" + cmd + "\""};
}

// -- Control plane ----------------------------------------------------------

obs::CtlDecision Crfs::tune(std::string_view knob, double value, std::string source) {
  const TuneResult r = knobs_->tune(knob, value);
  obs::CtlDecision d;
  d.ts_ns = obs::now_ns();
  d.source = std::move(source);
  d.rule = "tune";
  d.knob = r.knob;
  d.requested = r.requested;
  d.from = r.from;
  d.to = r.to;
  d.outcome = r.outcome;
  d.reason = r.reason;
  d.generation = r.generation;
  d.seq = decisions_->record(d);
  return d;
}

Status Crfs::handle_tune_marker(std::span<const std::byte> data) {
  const std::string text(reinterpret_cast<const char*>(data.data()), data.size());
  const auto is_sep = [](unsigned char c) { return std::isspace(c) != 0 || c == ','; };
  std::size_t i = 0;
  bool any = false;
  while (i < text.size()) {
    while (i < text.size() && is_sep(text[i])) ++i;
    std::size_t j = i;
    while (j < text.size() && !is_sep(text[j])) ++j;
    if (j > i) {
      const std::string token = text.substr(i, j - i);
      const std::size_t eq = token.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 >= token.size()) {
        return Error{EINVAL, "tune marker: expected knob=value, got \"" + token + "\""};
      }
      const std::string value_str = token.substr(eq + 1);
      char* end = nullptr;
      const double value = std::strtod(value_str.c_str(), &end);
      if (end == value_str.c_str() || *end != '\0') {
        return Error{EINVAL, "tune marker: bad value in \"" + token + "\""};
      }
      // Vetoes (unknown knob, apply refusal) fail the write with the
      // offending token; clamps succeed — the audit trail carries the
      // clamp detail either way.
      const obs::CtlDecision d = tune(token.substr(0, eq), value, "ctlfile");
      if (!d.outcome.empty() && d.outcome == "vetoed") {
        return Error{EINVAL, "tune marker: \"" + token + "\": " + d.reason};
      }
      any = true;
    }
    i = j;
  }
  if (!any) return Error{EINVAL, "tune marker: expected knob=value, got empty command"};
  return {};
}

std::string Crfs::controller_json() const {
  std::string out = "{\"enabled\":";
  out += controller_ != nullptr ? "true" : "false";
  out += ",\"generation\":" + std::to_string(knobs_->generation());
  out += ",\"ticks\":" + std::to_string(controller_ != nullptr ? controller_->ticks() : 0);
  out += ",\"knob_plane\":" + knobs_->to_json();
  out += ",\"decisions\":" + decisions_->to_json();
  out += ",\"decisions_total\":" + std::to_string(decisions_->total());
  out += "}";
  return out;
}

// -- Flight recorder --------------------------------------------------------

void Crfs::refresh_flight(bool force) {
  if (flight_ == nullptr) return;
  const std::uint64_t now = obs::now_ns();
  if (force) {
    last_flight_refresh_ns_.store(now, std::memory_order_relaxed);
  } else {
    // CAS-throttled: at most one render per postmortem_refresh_ms across
    // all IO threads; losers skip instead of queueing on the render.
    const std::uint64_t interval =
        static_cast<std::uint64_t>(cfg_.postmortem_refresh_ms) * 1'000'000;
    std::uint64_t last = last_flight_refresh_ns_.load(std::memory_order_relaxed);
    if (now < last + interval) return;
    if (!last_flight_refresh_ns_.compare_exchange_strong(last, now,
                                                         std::memory_order_relaxed)) {
      return;
    }
  }
  flight_->refresh(render_postmortem());
}

std::string Crfs::render_postmortem() const {
  const std::uint64_t now = obs::now_ns();
  std::string out = "{\"crfs_postmortem\":1";
  out += ",\"schema_version\":3";
  out += ",\"rendered_ns\":" + std::to_string(now);
  out += ",\"config\":\"";
  append_json_escaped(out, cfg_.describe());
  out += "\"";

  const MountStats::Snapshot s = stats_.snapshot();
  out += ",\"mount\":{\"app_writes\":" + std::to_string(s.app_writes);
  out += ",\"app_bytes\":" + std::to_string(s.app_bytes);
  out += ",\"full_flushes\":" + std::to_string(s.full_flushes);
  out += ",\"partial_flushes\":" + std::to_string(s.partial_flushes);
  out += ",\"chunk_steals\":" + std::to_string(s.chunk_steals) + "}";

  out += ",\"epoch_open\":";
  if (epochs_ != nullptr) {
    const auto open = epochs_->open_epoch(now);
    out += open.has_value() ? open->to_json() : std::string("null");
    out += ",\"epochs\":" + obs::epochs_to_json(epochs_->records());
    out += ",\"epochs_completed\":" + std::to_string(epochs_->total_finalized());
  } else {
    out += "null,\"epochs\":[],\"epochs_completed\":0";
  }

  out += ",\"events\":" + obs::events_to_json(events_.snapshot());
  out += ",\"slow\":" + slow_.to_json();
  out += ",\"pipeline\":" + metrics_.snapshot().to_json();
  out += ",\"controller\":" + controller_json();
  out += ",\"journal\":" + journal_json();
  out += ",\"slo\":" + slo_json();
  out += ",\"tier\":" + tier_json();
  if (sampler_ != nullptr) {
    out += ",\"samples_taken\":" + std::to_string(sampler_->samples_taken());
  }

  // Bounded trace tail: the last pipeline spans before the crash. Kept
  // small so the document fits the recorder's reserved buffer even with
  // large trace rings.
  constexpr std::size_t kTraceTail = 64;
  auto spans = trace_.snapshot();
  const std::size_t first = spans.size() > kTraceTail ? spans.size() - kTraceTail : 0;
  out += ",\"trace_tail\":[";
  for (std::size_t i = first; i < spans.size(); ++i) {
    if (i > first) out += ",";
    out += "{\"name\":\"";
    append_json_escaped(out, spans[i].name);
    out += "\",\"tid\":" + std::to_string(spans[i].tid);
    out += ",\"ts_ns\":" + std::to_string(spans[i].ts_ns);
    out += ",\"dur_ns\":" + std::to_string(spans[i].dur_ns);
    out += ",\"trace_id\":" + std::to_string(spans[i].trace_id) + "}";
  }
  out += "]}";
  return out;
}

Status Crfs::dump_postmortem() {
  if (flight_ == nullptr) {
    return Error{EINVAL, "no flight recorder (set Config::postmortem_path)"};
  }
  refresh_flight(/*force=*/true);
  if (!flight_->dump_now()) {
    return Error{EIO, "postmortem dump to " + flight_->path() + " failed"};
  }
  return {};
}

Status Crfs::export_trace(const std::string& path) const {
  return obs::write_chrome_trace(path, trace_.snapshot());
}

Status Crfs::truncate(const std::string& path, std::uint64_t size) {
  auto entry = table_.find(path);
  if (entry != nullptr) {
    drain(entry);
    {
      std::lock_guard agg(entry->agg_mu);
      entry->size_seen.store(size, std::memory_order_relaxed);
      entry->write_gen.fetch_add(1, std::memory_order_release);
    }
    return backend_->truncate(entry->backend_file(), size);
  }
  // Not open: go through a temporary backend handle.
  auto bf = backend_->open_file(path, OpenFlags{.create = false, .truncate = false, .write = true});
  if (!bf.ok()) return bf.error();
  const Status st = backend_->truncate(bf.value(), size);
  const Status cl = backend_->close_file(bf.value());
  return st.ok() ? cl : st;
}

}  // namespace crfs
