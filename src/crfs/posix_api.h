// PosixApi: an errno-style POSIX facade over a CRFS mount.
//
// The paper's pitch is transparency: "any software component using
// standard filesystem interfaces can transparently benefit from CRFS's
// capabilities". Code written against open/read/write/lseek/close can't
// consume crfs::Result directly, so this facade provides the classic
// shapes — int fds, ssize_t returns, errno — over a FuseShim, including a
// per-mount file-descriptor table with O_APPEND and cursor semantics.
//
// Thread-safe: distinct fds may be used concurrently; sharing one fd
// across threads serialises on that fd's cursor (as POSIX file offsets
// effectively do).
#pragma once

#include <fcntl.h>

#include <memory>
#include <mutex>
#include <unordered_map>

#include "crfs/fuse_shim.h"

namespace crfs {

class PosixApi {
 public:
  explicit PosixApi(FuseShim& shim) : shim_(shim) {}

  /// open(2): supported flags are O_RDONLY/O_WRONLY/O_RDWR, O_CREAT,
  /// O_TRUNC, O_APPEND, O_EXCL. Returns fd >= 0, or -1 with errno set.
  int open(const char* path, int flags);

  /// close(2).
  int close(int fd);

  /// write(2): appends at the fd cursor (or end-of-file under O_APPEND).
  ssize_t write(int fd, const void* buf, std::size_t count);

  /// pwrite(2): positioned; does not move the cursor.
  ssize_t pwrite(int fd, const void* buf, std::size_t count, off_t offset);

  /// read(2) / pread(2).
  ssize_t read(int fd, void* buf, std::size_t count);
  ssize_t pread(int fd, void* buf, std::size_t count, off_t offset);

  /// lseek(2): SEEK_SET / SEEK_CUR / SEEK_END.
  off_t lseek(int fd, off_t offset, int whence);

  /// fsync(2).
  int fsync(int fd);

  /// Metadata ops (path-based).
  int mkdir(const char* path);
  int rmdir(const char* path);
  int unlink(const char* path);
  int rename(const char* from, const char* to);
  int truncate(const char* path, off_t length);
  /// stat(2) subset: fills size and directory bit.
  int stat(const char* path, struct ::stat* out);

  /// Open fd count (diagnostics).
  std::size_t open_fds() const;

 private:
  struct Descriptor {
    Crfs::FileHandle handle = 0;
    std::string path;
    std::uint64_t cursor = 0;
    bool append = false;
    bool writable = false;
    std::mutex mu;  // serialises cursor updates on a shared fd
  };

  std::shared_ptr<Descriptor> get(int fd);
  static int fail(int err) {
    errno = err;
    return -1;
  }
  static ssize_t failz(int err) {
    errno = err;
    return -1;
  }

  FuseShim& shim_;
  mutable std::mutex mu_;
  std::unordered_map<int, std::shared_ptr<Descriptor>> fds_;
  int next_fd_ = 3;  // 0-2 reserved, as tradition demands
};

}  // namespace crfs
