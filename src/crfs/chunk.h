// Chunk: one fixed-size aggregation buffer from the mount-time pool.
//
// Lifecycle (paper §IV-B):
//   pool --acquire--> current chunk of a file --fill--> work queue
//        <--release-- IO thread after pwrite to the backend
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>

namespace crfs {

class Chunk {
 public:
  /// Allocates a chunk with `capacity` bytes of 4 KB-aligned storage
  /// (alignment keeps backend pwrites page-aligned when fills are).
  explicit Chunk(std::size_t capacity)
      : capacity_(capacity),
        storage_(static_cast<std::byte*>(::operator new(capacity, std::align_val_t{4096}))) {}

  ~Chunk() { ::operator delete(storage_, std::align_val_t{4096}); }

  Chunk(const Chunk&) = delete;
  Chunk& operator=(const Chunk&) = delete;

  std::size_t capacity() const { return capacity_; }
  std::size_t fill() const { return fill_; }
  std::size_t remaining() const { return capacity_ - fill_; }
  bool full() const { return fill_ == capacity_; }
  bool empty() const { return fill_ == 0; }

  /// Offset within the target file where this chunk's data begins.
  std::uint64_t file_offset() const { return file_offset_; }

  /// Sentinel for chunks that are not part of a registered buffer pool
  /// (standalone test chunks). Pool indices are 16-bit because io_uring's
  /// SQE buf_index field is __u16.
  static constexpr std::uint16_t kNoPoolIndex = 0xffff;

  /// Index of this chunk's storage in the owning BufferPool's registered
  /// fixed-buffer table, set once at pool carve time (kNoPoolIndex for
  /// chunks outside a pool). Lets the uring engine use
  /// IORING_OP_WRITE_FIXED against pre-pinned pages.
  std::uint16_t pool_index() const { return pool_index_; }
  void set_pool_index(std::uint16_t index) { pool_index_ = index; }

  /// The whole backing allocation (not just the filled prefix), for
  /// fixed-buffer registration at mount time.
  std::span<const std::byte> storage_bytes() const { return {storage_, capacity_}; }

  /// Chunk-lifecycle ledger (docs/OBSERVABILITY.md "Durability lag"):
  /// copy-in timestamp of the first byte, stamped by the writer that
  /// acquired the chunk (reusing its existing clock read — no extra
  /// clock on the hot path). 0 means "not stamped" (uninstrumented
  /// callers); the IO pool then skips the lag derivation.
  std::uint64_t born_ns() const { return born_ns_; }
  void set_born_ns(std::uint64_t ns) { born_ns_ = ns; }

  /// Causal chain id (docs/OBSERVABILITY.md "Causal tracing"): assigned by
  /// the writer that acquired the chunk, from the mount's monotone id
  /// counter. Rides the chunk across the queue so the IO worker can stitch
  /// its spans to the producer's without any lookup. 0 = unattributed.
  std::uint64_t trace_id() const { return trace_id_; }
  void set_trace_id(std::uint64_t id) { trace_id_ = id; }

  /// Pool-wait nanoseconds the producer spent acquiring THIS chunk
  /// (born_ns is stamped before the wait, so fill = born->enqueue splits
  /// into stall + copy using this). Stamped with the writer's existing
  /// clock reads — no extra clock on the hot path.
  std::uint64_t stall_ns() const { return stall_ns_; }
  void set_stall_ns(std::uint64_t ns) { stall_ns_ = ns; }

  /// Rewinds the chunk for reuse against a new file position.
  void reset(std::uint64_t file_offset) {
    fill_ = 0;
    file_offset_ = file_offset;
    born_ns_ = 0;
    trace_id_ = 0;
    stall_ns_ = 0;
  }

  /// File offset one past the last byte currently buffered.
  std::uint64_t append_point() const { return file_offset_ + fill_; }

  /// Copies up to remaining() bytes from `data` into the chunk; returns
  /// the number of bytes consumed.
  std::size_t append(std::span<const std::byte> data) {
    const std::size_t n = data.size() < remaining() ? data.size() : remaining();
    std::memcpy(storage_ + fill_, data.data(), n);
    fill_ += n;
    return n;
  }

  /// The valid buffered bytes, for the IO thread's backend pwrite.
  std::span<const std::byte> payload() const { return {storage_, fill_}; }

  /// Writable view of the whole backing allocation: the read pipeline
  /// fills pool chunks from the backend (prefetch) instead of from the
  /// application, then marks the valid prefix with set_fill().
  std::span<std::byte> mutable_storage() { return {storage_, capacity_}; }

  /// Marks the first `n` bytes valid after an engine-side fill (clamped
  /// to capacity). Pairs with mutable_storage(); append() is the
  /// write-path way to advance fill.
  void set_fill(std::size_t n) { fill_ = n < capacity_ ? n : capacity_; }

 private:
  std::size_t capacity_;
  std::byte* storage_;
  std::size_t fill_ = 0;
  std::uint64_t file_offset_ = 0;
  std::uint64_t born_ns_ = 0;
  std::uint64_t trace_id_ = 0;
  std::uint64_t stall_ns_ = 0;
  std::uint16_t pool_index_ = kNoPoolIndex;
};

}  // namespace crfs
