// HandleTable: the open-handle registry on CRFS's request hot path.
//
// Every FUSE-sized request (write/read/fsync) must map its file handle to
// the FileEntry it was opened against. The original implementation kept
// one mutex-guarded hash map, which made the handle lookup a global
// rendezvous for all concurrent checkpoint streams. This table instead
// resolves the FileEntry once per open() and caches it in a fixed slot
// array (docs/PERFORMANCE.md):
//
//   * get()/remove() index straight into the slot — no hash, no global
//     lock; each slot has its own mutex, so two streams only contend when
//     they use the *same* handle concurrently (which POSIX callers don't).
//   * A handle encodes {slot index, generation}; the generation is bumped
//     on remove, so a stale handle after close+reopen reliably misses
//     instead of aliasing the new file (EBADF, not corruption).
//   * More live handles than slots spill into a mutex-guarded overflow
//     map — correctness never depends on the fixed capacity, only the
//     fast path does.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "crfs/file_table.h"

namespace crfs {

/// Per-open-handle state, resolved once at open() and cached: the file's
/// table entry plus the writable bit from the open flags.
struct HandleState {
  std::shared_ptr<FileEntry> entry;
  bool writable = false;
  /// Epoch control-file handle (Config::epoch_marker_path): writes carry
  /// "begin [label]" / "end" commands for the EpochTracker and nothing
  /// reaches the backend. The entry is a detached dummy (not in the
  /// FileTable) so the slot machinery treats the handle as live.
  bool epoch_marker = false;
  /// Tune control-file handle (Config::tune_marker_path): writes carry
  /// "knob=value" tokens for the KnobPlane; same detached-dummy scheme.
  bool tune_marker = false;
};

class HandleTable {
 public:
  using Handle = std::uint64_t;

  static constexpr std::size_t kDefaultSlots = 1024;

  explicit HandleTable(std::size_t slots = kDefaultSlots)
      : slots_(slots == 0 ? 1 : slots) {
    free_.reserve(slots_.size());
    for (std::size_t i = slots_.size(); i-- > 0;) {
      free_.push_back(static_cast<std::uint32_t>(i));
    }
  }

  HandleTable(const HandleTable&) = delete;
  HandleTable& operator=(const HandleTable&) = delete;

  /// Registers an open handle; never fails (spills past capacity).
  Handle insert(HandleState state) {
    std::uint32_t idx;
    {
      std::lock_guard lock(alloc_mu_);
      if (free_.empty()) {
        const Handle h = kOverflowBit | next_overflow_++;
        overflow_.emplace(h, std::move(state));
        return h;
      }
      idx = free_.back();
      free_.pop_back();
    }
    Slot& slot = slots_[idx];
    std::lock_guard lock(slot.mu);
    slot.state = std::move(state);
    return (static_cast<Handle>(slot.generation) << 32) | (idx + 1);
  }

  /// Hot path: copies out the handle's state (one per-slot lock, no hash).
  /// nullopt for unknown, closed, or stale (generation-mismatched) handles.
  std::optional<HandleState> get(Handle h) const {
    if (h & kOverflowBit) {
      std::lock_guard lock(alloc_mu_);
      auto it = overflow_.find(h);
      if (it == overflow_.end()) return std::nullopt;
      return it->second;
    }
    const std::uint64_t slot_plus1 = h & 0xffffffffu;
    if (slot_plus1 == 0 || slot_plus1 > slots_.size()) return std::nullopt;
    const Slot& slot = slots_[slot_plus1 - 1];
    std::lock_guard lock(slot.mu);
    if (slot.generation != static_cast<std::uint32_t>(h >> 32) ||
        slot.state.entry == nullptr) {
      return std::nullopt;
    }
    return slot.state;
  }

  /// Unregisters the handle, returning its state (nullopt if unknown).
  std::optional<HandleState> remove(Handle h) {
    if (h & kOverflowBit) {
      std::lock_guard lock(alloc_mu_);
      auto it = overflow_.find(h);
      if (it == overflow_.end()) return std::nullopt;
      HandleState state = std::move(it->second);
      overflow_.erase(it);
      return state;
    }
    const std::uint64_t slot_plus1 = h & 0xffffffffu;
    if (slot_plus1 == 0 || slot_plus1 > slots_.size()) return std::nullopt;
    const auto idx = static_cast<std::uint32_t>(slot_plus1 - 1);
    Slot& slot = slots_[idx];
    std::optional<HandleState> state;
    {
      std::lock_guard lock(slot.mu);
      if (slot.generation != static_cast<std::uint32_t>(h >> 32) ||
          slot.state.entry == nullptr) {
        return std::nullopt;
      }
      state = std::move(slot.state);
      slot.state = HandleState{};
      slot.generation += 1;  // stale handles miss from now on
    }
    std::lock_guard lock(alloc_mu_);
    free_.push_back(idx);
    return state;
  }

  /// All live handle states (unmount sweep for leaked handles).
  std::vector<HandleState> snapshot() const {
    std::vector<HandleState> out;
    for (const Slot& slot : slots_) {
      std::lock_guard lock(slot.mu);
      if (slot.state.entry != nullptr) out.push_back(slot.state);
    }
    std::lock_guard lock(alloc_mu_);
    for (const auto& [h, state] : overflow_) out.push_back(state);
    return out;
  }

 private:
  static constexpr Handle kOverflowBit = Handle{1} << 63;

  struct Slot {
    mutable std::mutex mu;
    HandleState state;            ///< entry == nullptr means free
    std::uint32_t generation = 1;
  };

  std::vector<Slot> slots_;

  // Cold path (open/close only): free-slot stack and the overflow map.
  mutable std::mutex alloc_mu_;
  std::vector<std::uint32_t> free_;
  std::unordered_map<Handle, HandleState> overflow_;
  std::uint64_t next_overflow_ = 1;
};

}  // namespace crfs
