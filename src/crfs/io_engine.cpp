#include "crfs/io_engine.h"

#include <cerrno>
#include <cstdlib>
#include <limits>

#include "crfs/file_table.h"

namespace crfs {

Status backend_write_run(BackendFs& backend, const IoRun& run) {
  const BackendFile file = run.jobs.front().file->backend_file();
  if (run.jobs.size() == 1) {
    return backend.pwrite(file, run.jobs.front().chunk->payload(), run.offset);
  }
  std::vector<BackendIoVec> iov;
  iov.reserve(run.jobs.size());
  for (const WriteJob& job : run.jobs) {
    iov.push_back(BackendIoVec{job.chunk->payload().data(), job.chunk->fill()});
  }
  return backend.pwritev(file, iov, run.offset);
}

Result<std::size_t> backend_read_run(BackendFs& backend, const ReadRun& run) {
  if (run.segs.size() == 1) {
    return backend.pread(run.file, {run.segs.front().dst, run.segs.front().len}, run.offset);
  }
  std::vector<BackendMutIoVec> iov;
  iov.reserve(run.segs.size());
  for (const ReadSeg& seg : run.segs) {
    iov.push_back(BackendMutIoVec{seg.dst, seg.len});
  }
  return backend.preadv(run.file, iov, run.offset);
}

void IoEngine::submit_read(ReadRun run) {
  const std::uint64_t t = obs::now_ns();
  read_complete_(std::move(run), Error{ENOTSUP, "engine has no read path"}, t, t);
}

void SyncEngine::submit(IoRun run) {
  const std::uint64_t t_start = obs::now_ns();
  Status status = backend_write_run(backend_, run);
  complete_(std::move(run), std::move(status), t_start, obs::now_ns());
}

void SyncEngine::submit_read(ReadRun run) {
  const std::uint64_t t_start = obs::now_ns();
  Result<std::size_t> nread = backend_read_run(backend_, run);
  read_complete_(std::move(run), std::move(nread), t_start, obs::now_ns());
}

std::size_t SyncEngine::capacity() const {
  // Inline completion means inflight() is always 0; an "unbounded"
  // capacity lets the worker's room computation pass the batch size
  // through unchanged.
  return std::numeric_limits<std::size_t>::max();
}

std::unique_ptr<IoEngine> make_io_engine(const IoEngineOptions& opts, BackendFs& backend,
                                         std::vector<ChunkRegion> regions, IoEngineObs obs,
                                         IoEngine::CompleteFn complete) {
  if (opts.requested == IoEngineKind::kUring) {
    // CRFS_FORCE_SYNC pins the fallback path (CI proves tier-1 stays green
    // on kernels without io_uring without needing such a kernel).
    const char* force = std::getenv("CRFS_FORCE_SYNC");
    const bool forced_sync = force != nullptr && force[0] != '\0' && force[0] != '0';
    if (!forced_sync) {
      if (auto eng = make_uring_engine(opts.uring_depth == 0 ? 1 : opts.uring_depth, backend,
                                       std::move(regions), obs, complete)) {
        return eng;
      }
    }
  }
  // Silent fallback: the mount comes up either way; stats/Prometheus
  // report the engine that actually runs.
  return std::make_unique<SyncEngine>(backend, std::move(complete));
}

}  // namespace crfs
