// crfs::File — RAII convenience wrapper with a sequential cursor.
//
// The checkpoint writer, examples, and tests use this instead of juggling
// raw handles: the destructor closes the handle (best-effort), and
// write()/read() advance an internal offset exactly like a POSIX fd
// cursor. Routing goes through a FuseShim so every byte experiences FUSE
// request splitting, as it would on a real mount.
#pragma once

#include <utility>

#include "crfs/fuse_shim.h"

namespace crfs {

class File {
 public:
  /// Opens `path` through `shim`. Check ok() before use.
  static Result<File> open(FuseShim& shim, const std::string& path, OpenFlags flags) {
    auto h = shim.open(path, flags);
    if (!h.ok()) return h.error();
    return File(shim, h.value());
  }

  File(File&& other) noexcept
      : shim_(std::exchange(other.shim_, nullptr)),
        handle_(other.handle_),
        offset_(other.offset_) {}

  File& operator=(File&& other) noexcept {
    if (this != &other) {
      close_quietly();
      shim_ = std::exchange(other.shim_, nullptr);
      handle_ = other.handle_;
      offset_ = other.offset_;
    }
    return *this;
  }

  File(const File&) = delete;
  File& operator=(const File&) = delete;

  ~File() { close_quietly(); }

  /// Appends at the cursor and advances it.
  Status write(std::span<const std::byte> data) {
    const Status st = shim_->write(handle_, data, offset_);
    if (st.ok()) offset_ += data.size();
    return st;
  }

  Status write(const void* data, std::size_t size) {
    return write({static_cast<const std::byte*>(data), size});
  }

  /// Positioned write; does not move the cursor.
  Status pwrite(std::span<const std::byte> data, std::uint64_t offset) {
    return shim_->write(handle_, data, offset);
  }

  /// Reads at the cursor and advances it by the bytes read.
  Result<std::size_t> read(std::span<std::byte> data) {
    auto r = shim_->read(handle_, data, offset_);
    if (r.ok()) offset_ += r.value();
    return r;
  }

  Result<std::size_t> pread(std::span<std::byte> data, std::uint64_t offset) {
    return shim_->read(handle_, data, offset);
  }

  Status fsync() { return shim_->fsync(handle_); }

  void seek(std::uint64_t offset) { offset_ = offset; }
  std::uint64_t tell() const { return offset_; }

  /// Explicit close with error reporting; the destructor ignores errors.
  Status close() {
    if (shim_ == nullptr) return {};
    const Status st = shim_->close(handle_);
    shim_ = nullptr;
    return st;
  }

 private:
  File(FuseShim& shim, Crfs::FileHandle handle) : shim_(&shim), handle_(handle) {}

  void close_quietly() {
    if (shim_ != nullptr) {
      (void)shim_->close(handle_);
      shim_ = nullptr;
    }
  }

  FuseShim* shim_ = nullptr;
  Crfs::FileHandle handle_ = 0;
  std::uint64_t offset_ = 0;
};

}  // namespace crfs
