// Readahead: the restart-side read pipeline (read mirror of the write
// aggregation machinery; ROADMAP item "read path").
//
// The paper leaves read() a synchronous passthrough; a BLCR-style restore
// is a strict forward scan, so every pread stalls the restart for one full
// backend round trip. This prefetcher recognizes the sequential scan (a
// per-file expected-offset streak), then keeps up to `window` chunk-sized
// reads in flight through a dedicated IoEngine (the same sync/uring
// machinery the write path uses — IORING_OP_READ_FIXED over the pool's
// registered chunk storage, synchronous preadv fallback). Prefetched
// chunks are parked in pool-backed cache slots and consumed by later
// reads; anything unconsumed on a seek, a write, or close is counted as
// wasted and the chunks go back to the pool.
//
// Coherence: the cache is valid only for the FileEntry::write_gen it was
// filled under. Every serve snapshots the generation; if a write or
// truncate moved it, the whole cache for that file is dropped before
// serving (the caller has already barriered the file's queued chunks, so
// a fresh backend read observes them).
//
// Concurrency: one mutex serializes the whole prefetcher (restores are
// single-stream scans; writers never enter). The engine is driven only
// under that mutex, so its inline completion callback runs lock-free
// within an already-locked serve and must not re-lock.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "backend/backend_fs.h"
#include "crfs/buffer_pool.h"
#include "crfs/io_engine.h"
#include "obs/metrics.h"

namespace crfs {

class FileEntry;

/// Metric sinks for the read pipeline (owned by the mount registry; all
/// optional so standalone tests can run unsinked).
struct ReadObs {
  obs::Counter* ops = nullptr;              ///< crfs.read.ops
  obs::Counter* bytes = nullptr;            ///< crfs.read.bytes
  obs::Counter* prefetch_issued = nullptr;  ///< crfs.read.prefetch_issued
  obs::Counter* prefetch_hits = nullptr;    ///< crfs.read.prefetch_hits
  obs::Counter* prefetch_wasted = nullptr;  ///< crfs.read.prefetch_wasted
  obs::Counter* sync_preads = nullptr;      ///< crfs.read.sync_preads
  obs::LatencyHistogram* pread_ns = nullptr;        ///< crfs.read.pread_ns
  obs::LatencyHistogram* inflight_depth = nullptr;  ///< crfs.read.inflight_depth
  /// Slow-read forensics hook (path, offset, len, t_start, t_done);
  /// thresholding happens in the sink (SlowStore).
  std::function<void(const std::string& path, std::uint64_t offset, std::size_t len,
                     std::uint64_t t_start, std::uint64_t t_done)>
      on_slow;
};

/// Per-restore attribution row (crfsctl report "Restores" table): one
/// file's read scan, finalized when the file is evicted (closed).
struct RestoreLedgerEntry {
  std::string path;
  std::uint64_t bytes = 0;
  std::uint64_t ops = 0;
  std::uint64_t prefetch_issued = 0;
  std::uint64_t prefetch_hits = 0;
  std::uint64_t prefetch_wasted = 0;
  std::uint64_t sync_preads = 0;
  std::uint64_t ttfb_ns = 0;        ///< latency of the scan's first read
  std::uint64_t first_read_ns = 0;  ///< monotonic stamp of first read
  std::uint64_t last_read_ns = 0;   ///< monotonic stamp of last read
  bool active = false;              ///< still open (snapshot of a live scan)
};

class Readahead {
 public:
  /// `engine_opts` mirrors the mount's write-engine choice; the read
  /// engine is a separate ring so restore traffic never competes with
  /// checkpoint SQEs for slots. `regions` enables READ_FIXED into pool
  /// chunk storage.
  Readahead(BackendFs& backend, BufferPool& pool, const IoEngineOptions& engine_opts,
            std::vector<ChunkRegion> regions, IoEngineObs engine_obs, ReadObs obs,
            std::size_t ledger_capacity);

  /// Drains and releases everything; must run before the pool shuts down.
  ~Readahead();

  Readahead(const Readahead&) = delete;
  Readahead& operator=(const Readahead&) = delete;

  /// Serves one application read at `offset`, from the prefetch cache
  /// where possible, with a blocking backend pread for the uncovered
  /// tail. When `enabled` and the file's sequential streak is
  /// established, tops the window back up to `window` chunk reads in
  /// flight before returning. Returns bytes read (short only at EOF).
  Result<std::size_t> read(const std::shared_ptr<FileEntry>& entry, std::span<std::byte> out,
                           std::uint64_t offset, bool enabled, unsigned window);

  /// Drops all cached and in-flight state for `entry` (final close),
  /// finalizing its restore-ledger row. Idempotent.
  void evict(const FileEntry* entry);

  /// Releases the read engine's registered-fd slot before the backend
  /// closes `file` (mirrors IoThreadPool::forget_backend_file).
  void forget_file(BackendFile file);

  /// Engine actually running after fallback ("sync"/"uring").
  const char* engine_name() const { return engine_->name(); }

  /// Reads currently in flight on the read engine (monitoring gauge;
  /// engine inflight() is thread-safe by contract).
  std::size_t engine_inflight() const { return engine_->inflight(); }

  /// Finalized restore rows (oldest first) plus live scans (active=true),
  /// ordered by first read time.
  std::vector<RestoreLedgerEntry> ledger_snapshot() const;

 private:
  struct FileState;

  /// One pool-backed cache slot: a chunk being (or already) filled from
  /// the backend.
  struct Slot {
    std::unique_ptr<Chunk> chunk;
    FileState* owner = nullptr;
    std::uint64_t offset = 0;  ///< file offset of the first byte
    std::size_t want = 0;      ///< bytes requested
    std::size_t valid = 0;     ///< bytes filled; < want means EOF inside
    enum class State { kInflight, kReady, kError } state = State::kInflight;
    int err = 0;
    bool consumed = false;  ///< any byte served to the application
  };

  struct FileState {
    std::uint64_t expected_next = 0;  ///< sequential-scan predictor
    std::uint64_t streak = 0;         ///< consecutive sequential reads
    std::uint64_t gen_seen = 0;       ///< FileEntry::write_gen of the cache
    std::uint64_t eof_at = ~std::uint64_t{0};  ///< lowest offset at/after EOF
    std::size_t inflight = 0;         ///< slots in State::kInflight
    std::deque<std::unique_ptr<Slot>> slots;  ///< sorted, contiguous coverage
    RestoreLedgerEntry stats;
    bool touched = false;
  };

  void drop_cache_locked(FileState& fs);
  void retire_front_locked(FileState& fs);
  void top_up_locked(const FileEntry* entry, FileState& fs, std::uint64_t next,
                     unsigned window);
  void finalize_locked(FileState& fs);

  BackendFs& backend_;
  BufferPool& pool_;
  ReadObs obs_;
  const std::size_t ledger_capacity_;

  mutable std::mutex mu_;
  std::unique_ptr<IoEngine> engine_;  ///< driven only under mu_
  std::unordered_map<const FileEntry*, FileState> files_;
  std::unordered_map<std::uint64_t, Slot*> inflight_tokens_;
  std::uint64_t next_token_ = 1;
  std::deque<RestoreLedgerEntry> ledger_;  ///< bounded ring, oldest first
};

}  // namespace crfs
