#include "crfs/buffer_pool.h"

#include <algorithm>

namespace crfs {

BufferPool::BufferPool(std::size_t pool_bytes, std::size_t chunk_bytes)
    : chunk_bytes_(chunk_bytes) {
  total_chunks_ = std::max<std::size_t>(1, pool_bytes / chunk_bytes);
  free_.reserve(total_chunks_);
  for (std::size_t i = 0; i < total_chunks_; ++i) {
    free_.push_back(std::make_unique<Chunk>(chunk_bytes_));
  }
}

BufferPool::~BufferPool() { shutdown(); }

std::unique_ptr<Chunk> BufferPool::acquire(std::uint64_t file_offset) {
  std::unique_lock lock(mu_);
  if (free_.empty() && !shutdown_) {
    contentions_ += 1;
    available_.wait(lock, [&] { return !free_.empty() || shutdown_; });
  }
  if (free_.empty()) return nullptr;  // shutdown
  auto chunk = std::move(free_.back());
  free_.pop_back();
  chunk->reset(file_offset);
  return chunk;
}

std::unique_ptr<Chunk> BufferPool::acquire_for(std::uint64_t file_offset,
                                               std::chrono::milliseconds timeout) {
  std::unique_lock lock(mu_);
  if (free_.empty() && !shutdown_) {
    contentions_ += 1;
    available_.wait_for(lock, timeout, [&] { return !free_.empty() || shutdown_; });
  }
  if (free_.empty()) return nullptr;  // timeout or shutdown
  auto chunk = std::move(free_.back());
  free_.pop_back();
  chunk->reset(file_offset);
  return chunk;
}

std::unique_ptr<Chunk> BufferPool::try_acquire(std::uint64_t file_offset) {
  std::lock_guard lock(mu_);
  if (free_.empty()) return nullptr;
  auto chunk = std::move(free_.back());
  free_.pop_back();
  chunk->reset(file_offset);
  return chunk;
}

void BufferPool::release(std::unique_ptr<Chunk> chunk) {
  if (!chunk) return;
  {
    std::lock_guard lock(mu_);
    if (shutdown_) return;  // drop on the floor during teardown
    free_.push_back(std::move(chunk));
  }
  available_.notify_one();
}

void BufferPool::shutdown() {
  {
    std::lock_guard lock(mu_);
    shutdown_ = true;
  }
  available_.notify_all();
}

std::size_t BufferPool::free_chunks() const {
  std::lock_guard lock(mu_);
  return free_.size();
}

std::uint64_t BufferPool::contention_count() const {
  std::lock_guard lock(mu_);
  return contentions_;
}

bool BufferPool::is_shutdown() const {
  std::lock_guard lock(mu_);
  return shutdown_;
}

}  // namespace crfs
