#include "crfs/buffer_pool.h"

#include <algorithm>
#include <thread>

namespace crfs {

namespace {

// Auto shard count: enough to split contention between a realistic number
// of concurrent streams without scattering a small pool too thin. Eight
// shards flatten the pool lock at 16+ writers; fewer chunks than that
// means the pool itself (not its lock) is the limiter anyway.
std::size_t auto_shards(std::size_t total_chunks) {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  return std::clamp<std::size_t>(std::min<std::size_t>(hw, 8), 1, total_chunks);
}

}  // namespace

BufferPool::BufferPool(std::size_t pool_bytes, std::size_t chunk_bytes, std::size_t shards)
    : chunk_bytes_(chunk_bytes) {
  const std::size_t total = std::max<std::size_t>(1, pool_bytes / chunk_bytes);
  total_chunks_.store(total, std::memory_order_relaxed);
  const std::size_t n_shards =
      shards == 0 ? auto_shards(total) : std::clamp<std::size_t>(shards, 1, total);
  shards_.reserve(n_shards);
  for (std::size_t s = 0; s < n_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
  // Round-robin distribution; shard sizes differ by at most one chunk.
  regions_.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    Shard& shard = *shards_[i % n_shards];
    auto chunk = std::make_unique<Chunk>(chunk_bytes_);
    // pool_index links each chunk to its slot in the fixed-buffer table;
    // pools too large for a 16-bit index leave the extras unregistered.
    if (i < Chunk::kNoPoolIndex) {
      chunk->set_pool_index(static_cast<std::uint16_t>(i));
      regions_.push_back(ChunkRegion{chunk->storage_bytes().data(), chunk_bytes_});
    }
    shard.free.push_back(std::move(chunk));
    shard.count.store(static_cast<std::uint32_t>(shard.free.size()),
                      std::memory_order_relaxed);
  }
  free_count_.store(total, std::memory_order_relaxed);
}

BufferPool::~BufferPool() { shutdown(); }

std::size_t BufferPool::home_shard() const {
  // Each thread gets a stable round-robin token at first use, spreading
  // writer threads evenly over the shards without any hashing.
  static std::atomic<std::size_t> next_token{0};
  thread_local const std::size_t token =
      next_token.fetch_add(1, std::memory_order_relaxed);
  return token % shards_.size();
}

std::unique_ptr<Chunk> BufferPool::try_acquire(std::uint64_t file_offset) {
  const std::size_t n = shards_.size();
  const std::size_t home = home_shard();
  for (std::size_t i = 0; i < n; ++i) {
    Shard& shard = *shards_[(home + i) % n];
    // Occupancy hint: skip shards that look empty without locking them.
    // The hint is updated under the shard lock, so a false "empty" only
    // happens around a concurrent pop — in which case the chunk is gone
    // anyway — and a false "non-empty" just costs one lock round-trip.
    if (shard.count.load(std::memory_order_acquire) == 0) continue;
    std::lock_guard lock(shard.mu);
    if (shard.free.empty()) continue;
    auto chunk = std::move(shard.free.back());
    shard.free.pop_back();
    shard.count.store(static_cast<std::uint32_t>(shard.free.size()),
                      std::memory_order_release);
    free_count_.fetch_sub(1, std::memory_order_relaxed);
    chunk->reset(file_offset);
    return chunk;
  }
  return nullptr;
}

std::unique_ptr<Chunk> BufferPool::acquire_for(std::uint64_t file_offset,
                                               std::chrono::milliseconds timeout) {
  if (auto chunk = try_acquire(file_offset)) return chunk;
  contentions_.fetch_add(1, std::memory_order_relaxed);

  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::unique_lock lock(wait_mu_);
  waiters_ += 1;
  waiters_hint_.store(waiters_, std::memory_order_release);

  std::unique_ptr<Chunk> got;
  for (;;) {
    if (shutdown_.load(std::memory_order_acquire)) break;
    // Re-check occupancy while holding wait_mu_: release() bumps
    // free_count_ before it takes wait_mu_ to notify, so either we see
    // the chunk here or the notifier sees us parked — no lost wakeup.
    if (free_count_.load(std::memory_order_acquire) > 0) {
      lock.unlock();
      got = try_acquire(file_offset);
      lock.lock();
      if (got != nullptr) break;
      continue;  // another waiter won the race; re-evaluate
    }
    if (std::chrono::steady_clock::now() >= deadline) break;
    available_.wait_until(lock, deadline);
  }

  waiters_ -= 1;
  waiters_hint_.store(waiters_, std::memory_order_release);
  return got;
}

void BufferPool::release(std::unique_ptr<Chunk> chunk) {
  if (!chunk) return;
  if (shutdown_.load(std::memory_order_acquire)) return;  // drop during teardown
  Shard& shard = *shards_[home_shard()];
  {
    std::lock_guard lock(shard.mu);
    shard.free.push_back(std::move(chunk));
    shard.count.store(static_cast<std::uint32_t>(shard.free.size()),
                      std::memory_order_release);
  }
  free_count_.fetch_add(1, std::memory_order_relaxed);
  if (waiters_hint_.load(std::memory_order_acquire) > 0) {
    // Taking wait_mu_ orders this notify after the waiter's occupancy
    // re-check, closing the park/notify race.
    std::lock_guard lock(wait_mu_);
    available_.notify_one();
  }
}

std::size_t BufferPool::resize(std::size_t target_chunks) {
  std::lock_guard resize_lock(resize_mu_);
  if (shutdown_.load(std::memory_order_acquire)) return total_chunks();
  target_chunks = std::max<std::size_t>(1, target_chunks);
  std::size_t total = total_chunks();

  while (total < target_chunks) {
    // Grown chunks keep the default kNoPoolIndex: they never enter the
    // fixed-buffer table (registered once at mount), so the uring engine
    // submits them via WRITEV and the registration stays valid.
    auto chunk = std::make_unique<Chunk>(chunk_bytes_);
    Shard& shard = *shards_[total % shards_.size()];
    {
      std::lock_guard lock(shard.mu);
      shard.free.push_back(std::move(chunk));
      shard.count.store(static_cast<std::uint32_t>(shard.free.size()),
                        std::memory_order_release);
    }
    free_count_.fetch_add(1, std::memory_order_relaxed);
    total += 1;
    total_chunks_.store(total, std::memory_order_relaxed);
  }
  if (total > target_chunks) {
    // Shrink: only chunks sitting free right now are removed; anything
    // parked, queued, or in flight stays out until released and is then
    // simply part of the (smaller) pool again.
    for (auto& shard_ptr : shards_) {
      if (total == target_chunks) break;
      Shard& shard = *shard_ptr;
      std::lock_guard lock(shard.mu);
      while (!shard.free.empty() && total > target_chunks) {
        auto chunk = std::move(shard.free.back());
        shard.free.pop_back();
        shard.count.store(static_cast<std::uint32_t>(shard.free.size()),
                          std::memory_order_release);
        free_count_.fetch_sub(1, std::memory_order_relaxed);
        total -= 1;
        total_chunks_.store(total, std::memory_order_relaxed);
        if (chunk->pool_index() != Chunk::kNoPoolIndex) {
          // Mount-time chunk: its storage may be registered with a ring's
          // fixed-buffer table, so retire it instead of freeing.
          retired_.push_back(std::move(chunk));
          retired_count_.store(retired_.size(), std::memory_order_relaxed);
        }
      }
    }
  }
  // A grow may satisfy writers parked on the exhaustion path.
  if (waiters_hint_.load(std::memory_order_acquire) > 0) {
    std::lock_guard lock(wait_mu_);
    available_.notify_all();
  }
  return total;
}

void BufferPool::shutdown() {
  shutdown_.store(true, std::memory_order_release);
  {
    std::lock_guard lock(wait_mu_);
  }
  available_.notify_all();
}

}  // namespace crfs
