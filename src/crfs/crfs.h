// Crfs: the Checkpoint/Restart Filesystem core (paper §IV).
//
// A stackable user-level filesystem: POSIX-shaped operations come in (in
// the paper via the FUSE kernel module; here via FuseShim or directly),
// writes are aggregated into pool chunks and flushed asynchronously by an
// IO thread pool; reads and metadata operations pass through to the
// backend unchanged. File layout on the backend is identical to what the
// application wrote, so a checkpoint can be restarted directly from the
// backend without CRFS mounted (paper §V-F).
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "backend/backend_fs.h"
#include "backend/tiered_backend.h"
#include "crfs/buffer_pool.h"
#include "crfs/config.h"
#include "crfs/file_table.h"
#include "crfs/handle_table.h"
#include "crfs/io_pool.h"
#include "crfs/knobs.h"
#include "crfs/readahead.h"
#include "crfs/work_queue.h"
#include "obs/controller.h"
#include "obs/epoch.h"
#include "obs/flight_recorder.h"
#include "obs/health.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/slo.h"
#include "obs/slow_store.h"
#include "obs/trace.h"

namespace crfs {

/// Counters exposed by a mount; all monotonically increasing.
struct MountStats {
  std::atomic<std::uint64_t> app_writes{0};      ///< write() calls received
  std::atomic<std::uint64_t> app_bytes{0};       ///< bytes received from apps
  std::atomic<std::uint64_t> full_flushes{0};    ///< chunks enqueued because full
  std::atomic<std::uint64_t> partial_flushes{0}; ///< chunks enqueued at close/fsync/seek
  std::atomic<std::uint64_t> reopens{0};         ///< opens that hit an existing entry
  /// Pool-exhaustion rescues: another file's partial chunk was flushed
  /// early because every chunk was parked (more open files than chunks).
  std::atomic<std::uint64_t> chunk_steals{0};
  /// Large writes issued straight to the backend, skipping the buffer-pool
  /// memcpy (Config::large_write_bypass).
  std::atomic<std::uint64_t> bypass_writes{0};
  std::atomic<std::uint64_t> reads{0};
  std::atomic<std::uint64_t> read_bytes{0};

  /// Plain-integer copy of the counters, so callers compare and print
  /// values instead of `.load()`-ing atomics field by field.
  struct Snapshot {
    std::uint64_t app_writes = 0;
    std::uint64_t app_bytes = 0;
    std::uint64_t full_flushes = 0;
    std::uint64_t partial_flushes = 0;
    std::uint64_t reopens = 0;
    std::uint64_t chunk_steals = 0;
    std::uint64_t bypass_writes = 0;
    std::uint64_t reads = 0;
    std::uint64_t read_bytes = 0;
  };

  Snapshot snapshot() const {
    // Relaxed: monitoring counters, each independently monotone.
    return Snapshot{
        app_writes.load(std::memory_order_relaxed),
        app_bytes.load(std::memory_order_relaxed),
        full_flushes.load(std::memory_order_relaxed),
        partial_flushes.load(std::memory_order_relaxed),
        reopens.load(std::memory_order_relaxed),
        chunk_steals.load(std::memory_order_relaxed),
        bypass_writes.load(std::memory_order_relaxed),
        reads.load(std::memory_order_relaxed),
        read_bytes.load(std::memory_order_relaxed),
    };
  }
};

class Crfs {
 public:
  using FileHandle = std::uint64_t;

  /// Mounts CRFS over `backend`. Fails on invalid configuration.
  static Result<std::unique_ptr<Crfs>> mount(std::shared_ptr<BackendFs> backend, Config cfg);

  /// Flushes every still-open file's buffered data, drains the IO pool,
  /// then releases the buffer pool.
  ~Crfs();

  Crfs(const Crfs&) = delete;
  Crfs& operator=(const Crfs&) = delete;

  // -- File IO ------------------------------------------------------------
  /// §IV-A: inserts/bumps the file-table entry, then opens on the backend.
  Result<FileHandle> open(const std::string& path, OpenFlags flags);

  /// §IV-B: copies `data` into the file's current chunk; full chunks go to
  /// the work queue. A non-contiguous offset flushes the current chunk and
  /// starts a new one at `offset` (checkpoint streams never hit this path,
  /// but correctness does not depend on sequential access).
  Status write(FileHandle handle, std::span<const std::byte> data, std::uint64_t offset);

  /// §IV-D1: passes through to the backend. With Config::flush_before_read
  /// (default), dirty buffered data for this file is flushed first.
  Result<std::size_t> read(FileHandle handle, std::span<std::byte> data, std::uint64_t offset);

  /// §IV-D2: enqueues the current chunk, waits for all outstanding chunk
  /// writes, then fsyncs the backend file.
  Status fsync(FileHandle handle);

  /// §IV-C: enqueues remaining buffered data, blocks until complete-chunk
  /// count equals write-chunk count, then drops the table reference.
  /// Returns any backend write error encountered for this file.
  Status close(FileHandle handle);

  // -- Metadata passthrough (§IV-D3) ---------------------------------------
  Result<BackendStat> getattr(const std::string& path);
  Status mkdir(const std::string& path);
  Status rmdir(const std::string& path);
  Status unlink(const std::string& path);
  Status rename(const std::string& from, const std::string& to);
  Result<std::vector<std::string>> list_dir(const std::string& path);
  /// Flushes buffered data for the path (if open) then truncates.
  Status truncate(const std::string& path, std::uint64_t size);

  // -- Introspection --------------------------------------------------------
  const Config& config() const { return cfg_; }
  const MountStats& stats() const { return stats_; }
  BackendFs& backend() { return *backend_; }

  // -- Tiered staging (docs/PERFORMANCE.md "Tiered staging") ----------------
  /// The TieredBackend this mount runs over, or nullptr when the backend
  /// is not tiered. Detected at mount via dynamic_cast; when present the
  /// mount wires epoch finalize -> seal_epoch, drain completion ->
  /// EpochTracker::attach_drain, binds crfs.tier.* metrics, and registers
  /// the drain_mbps/drain_parallel knobs against it.
  TieredBackend* tiered_backend() { return tier_; }
  const TieredBackend* tiered_backend() const { return tier_; }

  /// The stats_json "tier" section ({"enabled":false} without a tier).
  std::string tier_json() const {
    return tier_ != nullptr ? tier_->tier_json() : "{\"enabled\":false}";
  }
  BufferPool& buffer_pool() { return *pool_; }
  std::uint64_t backend_chunks_written() const { return io_pool_->chunks_written(); }
  std::size_t open_files() const { return table_.open_count(); }
  std::size_t queue_depth() const { return queue_.depth(); }

  /// The IO engine actually running after mount-time feature detection —
  /// "uring", or "sync" (either requested or fallen back to).
  const char* active_io_engine() const { return io_pool_->engine_name(); }

  /// The restore-side read engine (a separate ring from the write pool,
  /// same fallback rules).
  const char* active_read_engine() const { return readahead_->engine_name(); }

  /// Per-restore attribution rows (docs/PERFORMANCE.md "Read path and
  /// restore"): finalized scans oldest-first, then live scans
  /// (active=true).
  std::vector<RestoreLedgerEntry> restore_ledger() const {
    return readahead_->ledger_snapshot();
  }

  // -- Observability (docs/OBSERVABILITY.md) -------------------------------
  /// The mount's metric registry: per-stage latency histograms
  /// (crfs.write.copy_ns, crfs.write.pool_wait_ns, crfs.queue.wait_ns,
  /// crfs.io.pwrite_ns, crfs.drain.wait_ns), occupancy gauges
  /// (crfs.pool.*, crfs.queue.depth, crfs.io.in_flight) and counters.
  obs::Registry& metrics() { return metrics_; }
  const obs::Registry& metrics() const { return metrics_; }

  /// Span sink; empty unless Config::enable_tracing.
  obs::TraceCollector& trace() { return trace_; }
  const obs::TraceCollector& trace() const { return trace_; }

  /// Live telemetry sampler; nullptr unless Config::sample_ms > 0 (the
  /// default keeps the mount thread-free and sampler-free).
  obs::Sampler* sampler() { return sampler_.get(); }
  const obs::Sampler* sampler() const { return sampler_.get(); }

  /// Structured health/error events fired so far (bounded log, oldest
  /// dropped past Config::event_capacity). Health rules need the sampler
  /// on; pwrite failure events are recorded unconditionally.
  std::vector<obs::Event> events() const { return events_.snapshot(); }
  obs::EventBuffer& event_log() { return events_; }

  // -- Checkpoint epochs (docs/OBSERVABILITY.md "Epoch ledger") -------------
  /// Starts an explicit epoch (finalizing any active one). Explicit
  /// epochs are never auto-rotated; an empty label gets "epoch-<id>".
  /// Error when Config::epoch_tracking is off.
  Status epoch_begin(const std::string& label);

  /// Finalizes the active epoch (explicit or automatic); ok if none.
  Status epoch_end();

  /// Finished EpochRecords, oldest first (bounded by Config::epoch_ledger).
  std::vector<obs::EpochRecord> epochs() const;

  /// Snapshot of the still-running epoch, if any.
  std::optional<obs::EpochRecord> open_epoch() const;

  // -- Tail-latency forensics (docs/OBSERVABILITY.md "Slow exemplars") ------
  /// Bounded store of slow-chunk exemplars: full causal chain + pipeline
  /// state for every chunk whose durability lag or device time crossed
  /// Config::slow_capture_ms. Always present (capture disabled when the
  /// threshold is 0), so the stats_json "slow" key is schema-stable.
  obs::SlowStore& slow_store() { return slow_; }
  const obs::SlowStore& slow_store() const { return slow_; }

  /// The slow store as one JSON object (stats_json "slow" section).
  std::string slow_json() const { return slow_.to_json(); }

  // -- Durable journal (docs/OBSERVABILITY.md "Durable journal") ------------
  /// nullptr unless Config::journal_dir is set.
  obs::Journal* journal() { return journal_.get(); }
  const obs::Journal* journal() const { return journal_.get(); }

  /// The stats_json "journal" section ({"enabled":false} without one).
  std::string journal_json() const {
    return journal_ != nullptr ? journal_->to_json() : "{\"enabled\":false}";
  }

  // -- SLO burn rates (docs/OBSERVABILITY.md "SLOs and burn rates") ---------
  /// nullptr unless at least one slo_* target is configured.
  obs::SloMonitor* slo_monitor() { return slo_.get(); }
  const obs::SloMonitor* slo_monitor() const { return slo_.get(); }

  /// The stats_json "slo" section ({"enabled":false} without a monitor).
  std::string slo_json() const {
    return slo_ != nullptr ? slo_->to_json() : "{\"enabled\":false}";
  }

  // -- Control plane (docs/OBSERVABILITY.md "Control plane") ----------------
  /// Runtime-tunes one knob ("pool_chunks", "io_batch", "uring_depth",
  /// "sample_ms", "slow_pwrite_ms", "epoch_gap_ms", "slow_capture_ms",
  /// "readahead", "readahead_window").
  /// Out-of-bounds
  /// requests are clamped, impossible ones vetoed; every outcome is
  /// recorded in the decision log (and thus metrics/events/postmortem)
  /// before the returned CtlDecision is handed back. `source` tags the
  /// audit trail: "manual" (API/crfsctl), "ctlfile" (.crfs_tune), or
  /// "controller".
  obs::CtlDecision tune(std::string_view knob, double value,
                        std::string source = "manual");

  /// The knob plane: declared bounds plus the lock-free current snapshot.
  KnobPlane& knob_plane() { return *knobs_; }
  const KnobPlane& knob_plane() const { return *knobs_; }

  /// Audit trail of every knob-change decision (bounded ring).
  obs::DecisionLog& decision_log() { return *decisions_; }
  const obs::DecisionLog& decision_log() const { return *decisions_; }

  /// Feedback controller; nullptr unless Config::controller.
  obs::Controller* controller() { return controller_.get(); }

  /// {"generation":...,"knobs":[{name,value,min,max,unit},...]}.
  std::string knobs_json() const { return knobs_->to_json(); }

  /// Controller/knob-plane state as one JSON object: enabled flag, knob
  /// generation, knob table, decision ring, decision total, tick count.
  std::string controller_json() const;

  // -- Flight recorder (docs/OBSERVABILITY.md "Postmortem") -----------------
  /// nullptr unless Config::postmortem_path is set.
  obs::FlightRecorder* flight_recorder() { return flight_.get(); }

  /// Re-renders the postmortem document and writes it to
  /// Config::postmortem_path now (no fatal signal needed).
  Status dump_postmortem();

  /// The postmortem JSON document the recorder keeps pre-rendered:
  /// config, open epoch, epoch ledger, event buffer, registry counters/
  /// gauges, and the trace tail.
  std::string render_postmortem() const;

  /// Rendered ASCII report: mount counters + registry gauges + the
  /// per-stage latency table. Safe to call while the pipeline runs.
  std::string stats_report() const;

  /// Mount counters + registry snapshot as one JSON object.
  std::string stats_json() const;

  /// Writes the captured spans as Chrome trace_event JSON (loadable in
  /// chrome://tracing / Perfetto). Export after close()/fsync() for an
  /// exact trace; see obs/trace.h for the concurrent-export contract.
  Status export_trace(const std::string& path) const;

 private:
  Crfs(std::shared_ptr<BackendFs> backend, Config cfg);

  Result<std::shared_ptr<FileEntry>> entry_for(FileHandle handle);
  Result<HandleState> state_for(FileHandle handle);

  /// Enqueues `entry`'s current chunk (if any). Caller holds entry->agg_mu
  /// and passes the entry's shared_ptr so the WriteJob reuses it directly —
  /// no per-chunk file-table lookup on the flush path.
  /// Returns the write-chunk count snapshot after the enqueue.
  std::uint64_t flush_current_locked(const std::shared_ptr<FileEntry>& entry, bool partial);

  /// Gets a fresh chunk for `entry` (agg_mu held), stealing another
  /// file's parked partial chunk if the pool is exhausted — without this,
  /// opening more files than the pool has chunks can deadlock the mount.
  /// Nanoseconds spent blocked on the pool are accumulated into
  /// `*wait_ns` (the slow path only; the fast path reads no clock).
  std::unique_ptr<Chunk> acquire_chunk(FileEntry& entry, std::uint64_t offset,
                                       std::uint64_t* wait_ns);

  /// Flush + wait for all outstanding writes of `entry`.
  void drain(const std::shared_ptr<FileEntry>& entry);

  /// Epoch control-file write: parses "begin [label]" / "end".
  Status handle_epoch_marker(std::span<const std::byte> data);

  /// Tune control-file write: parses "knob=value" tokens (comma/whitespace
  /// separated), each routed through tune() with source "ctlfile". The
  /// first vetoed or malformed token fails the write, naming the token.
  Status handle_tune_marker(std::span<const std::byte> data);

  /// Registers the runtime knob set against the live pipeline stages.
  void define_knobs();

  /// Journals newly finished epochs and newly captured slow exemplars
  /// (sampler tick observer + unmount; single driver at a time). No-op
  /// without a journal.
  void journal_poll_cold_sinks();

  /// Flight-recorder refresh; `force` skips the postmortem_refresh_ms
  /// throttle (epoch transitions, critical events). No-op without a
  /// recorder.
  void refresh_flight(bool force);

  std::shared_ptr<BackendFs> backend_;
  /// backend_ as a TieredBackend when it is one (nullptr otherwise);
  /// never owns — same lifetime as backend_.
  TieredBackend* tier_ = nullptr;
  Config cfg_;
  // Declared before the pipeline pieces: instrumented stages hold
  // references into these, so they must outlive pool_/queue_/io_pool_.
  obs::Registry metrics_;
  obs::TraceCollector trace_;
  obs::EventBuffer events_;
  // Epoch tracker and flight recorder sit with the other sinks: WriteJobs
  // hold EpochState shared_ptrs and the IO pool's on_run_complete hook
  // refreshes the recorder, so both must outlive io_pool_.
  std::unique_ptr<obs::EpochTracker> epochs_;
  // Slow store sits with the sinks: IO workers capture into it, so it
  // must outlive io_pool_.
  obs::SlowStore slow_;
  std::unique_ptr<obs::FlightRecorder> flight_;
  std::atomic<std::uint64_t> last_flight_refresh_ns_{0};
  // Durable journal + SLO monitor sit with the sinks: the event listener
  // appends into the journal and the sampler tick observer drives both, so
  // they must outlive io_pool_ and be destroyed after the sampler stops.
  std::unique_ptr<obs::Journal> journal_;
  std::unique_ptr<obs::SloMonitor> slo_;
  // One shared extractor turns each Sample into the SloInput both the
  // monitor and the journal's sample frames consume. Touched only from the
  // tick observer (single driver).
  std::unique_ptr<obs::SloExtractor> slo_extract_;
  // High-water marks of what journal_poll_cold_sinks already persisted.
  std::uint64_t journaled_epochs_ = 0;
  std::uint64_t journaled_slow_ = 0;
  std::unique_ptr<BufferPool> pool_;
  WorkQueue queue_;
  std::unique_ptr<IoThreadPool> io_pool_;
  // Restore-side read pipeline: borrows pool chunks for prefetch slots, so
  // it is torn down (explicitly, in ~Crfs) before the pool shuts down.
  std::unique_ptr<Readahead> readahead_;
  // Lock-free mirrors of the readahead/readahead_window knobs, read per
  // serve on the read path.
  std::atomic<bool> readahead_on_{true};
  std::atomic<unsigned> readahead_window_{4};
  FileTable table_;
  MountStats stats_;

  // Live telemetry plane (only when cfg_.sample_ms > 0). Declared after
  // the pipeline pieces it observes; the sampler thread is stopped first
  // in ~Crfs so it never reads a gauge of a destroyed stage.
  std::unique_ptr<obs::HealthMonitor> health_;
  std::unique_ptr<obs::Sampler> sampler_;

  // Control plane: knob apply callbacks reach back into the pipeline
  // stages above, and the controller ticks from the sampler thread (which
  // ~Crfs stops before anything here is destroyed).
  std::unique_ptr<KnobPlane> knobs_;
  std::unique_ptr<obs::DecisionLog> decisions_;
  std::unique_ptr<obs::Controller> controller_;

  // Hot-path metric handles, resolved once at mount (see obs::Registry).
  obs::LatencyHistogram* h_write_copy_ = nullptr;
  obs::LatencyHistogram* h_pool_wait_ = nullptr;
  obs::LatencyHistogram* h_drain_wait_ = nullptr;
  // Large-write bypass shares the IO pool's pwrite metrics (the bypass IS
  // a backend pwrite, just issued from the app thread).
  obs::LatencyHistogram* h_pwrite_ = nullptr;
  obs::Counter* c_pwrite_bytes_ = nullptr;
  obs::Counter* c_pwrite_errors_ = nullptr;
  obs::Counter* c_bypass_bytes_ = nullptr;
  // Registry mirrors of the legacy MountStats counters (crfs.mount.*), so
  // reopen/flush/steal/bypass activity reaches Prometheus and `crfsctl
  // watch`; MountStats::snapshot() stays the source of truth for the CLI
  // tables and its values are bumped in the same statements.
  obs::Counter* c_m_reopens_ = nullptr;
  obs::Counter* c_m_partial_flushes_ = nullptr;
  obs::Counter* c_m_full_flushes_ = nullptr;
  obs::Counter* c_m_chunk_steals_ = nullptr;
  obs::Counter* c_m_bypass_writes_ = nullptr;

  /// Causal chain ids (docs/OBSERVABILITY.md "Causal tracing"): one
  /// relaxed fetch_add per chunk acquired; id 0 is reserved for
  /// "unattributed".
  std::atomic<std::uint64_t> next_trace_id_{1};

  /// Open-handle registry: per-slot locking, entry resolved once at open()
  /// — the write() hot path does no global lock and no hash lookup.
  HandleTable handles_;
};

}  // namespace crfs
