// UringEngine: raw io_uring submission/completion pipeline (no liburing).
//
// One ring per IO worker. Each coalesced run becomes one SQE
// (IORING_OP_WRITE_FIXED for a single registered chunk, IORING_OP_WRITEV
// for multi-chunk runs); user_data carries a heap RunState that owns the
// run's WriteJobs — and therefore the chunks' storage — until the CQE
// lands. Buffer-pool chunk storage is registered as fixed buffers and
// backend fds as fixed files where the kernel allows; both registrations
// degrade gracefully (plain WRITEV / plain fds) when refused.
//
// Ordering contract: the pipeline relies on FIFO-within-file for
// overlapping writes (last-writer-wins). Within one engine, a run that
// byte-overlaps an in-flight run of the same file is held back (reap until
// the earlier run completes) before submission; adjacent sequential runs
// never overlap, so the common checkpoint stream keeps full depth. Across
// workers the ordering guarantee is the same as the sync engine's (jobs of
// one file popped by different workers already raced there).
#include "crfs/io_engine.h"

#if defined(__linux__) && __has_include(<linux/io_uring.h>)
#define CRFS_HAVE_URING 1
#endif

#ifdef CRFS_HAVE_URING

#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <mutex>
#include <unordered_map>

#include "crfs/file_table.h"

namespace crfs {

namespace {

int sys_io_uring_setup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

int sys_io_uring_enter(int fd, unsigned to_submit, unsigned min_complete, unsigned flags) {
  return static_cast<int>(
      ::syscall(__NR_io_uring_enter, fd, to_submit, min_complete, flags, nullptr, 0));
}

int sys_io_uring_register(int fd, unsigned opcode, const void* arg, unsigned nr) {
  return static_cast<int>(::syscall(__NR_io_uring_register, fd, opcode, arg, nr));
}

/// Kernel-shared ring indices need atomic access; the ring memory is
/// suitably aligned by construction.
std::uint32_t load_acquire(const unsigned* p) {
  return std::atomic_ref<const unsigned>(*p).load(std::memory_order_acquire);
}
void store_release(unsigned* p, std::uint32_t v) {
  std::atomic_ref<unsigned>(*p).store(v, std::memory_order_release);
}

/// Fixed-file table size. Sparse (-1) slots are claimed per backend fd on
/// first submission and returned via forget_file at close.
constexpr unsigned kFileSlots = 64;

class UringEngine final : public IoEngine {
 public:
  static std::unique_ptr<IoEngine> create(unsigned depth, BackendFs& backend,
                                          std::vector<ChunkRegion> regions, IoEngineObs obs,
                                          CompleteFn complete) {
    io_uring_params params{};
    // Clamp to a sane SQ size; the kernel rounds up to a power of two.
    if (depth > 4096) depth = 4096;
    const int ring_fd = sys_io_uring_setup(depth, &params);
    if (ring_fd < 0) return nullptr;  // kernel without io_uring (or seccomp'd away)

    auto eng = std::unique_ptr<UringEngine>(
        new UringEngine(ring_fd, depth, backend, obs, std::move(complete)));
    if (!eng->map_rings(params)) return nullptr;
    eng->register_buffers(regions);
    eng->register_file_table();
    return eng;
  }

  ~UringEngine() override {
    // The owning worker drains before destruction; anything still listed
    // here means teardown raced a kernel completion we will never see —
    // free the states rather than leak.
    for (RunState* rs : inflight_runs_) delete rs;
    if (sqes_ != nullptr) ::munmap(sqes_, sqes_bytes_);
    if (cq_ptr_ != nullptr && cq_ptr_ != sq_ptr_) ::munmap(cq_ptr_, cq_bytes_);
    if (sq_ptr_ != nullptr) ::munmap(sq_ptr_, sq_bytes_);
    ::close(ring_fd_);
  }

  void submit(IoRun run) override {
    const int fd = backend_.raw_fd(run.jobs.front().file->backend_file());
    if (fd < 0) {
      // Non-fd backend (MemBackend, decorators): issue synchronously so
      // wrapper semantics (fault injection, throttling) are preserved
      // per run exactly as under the sync engine.
      const std::uint64_t t_start = obs::now_ns();
      Status status = backend_write_run(backend_, run);
      complete_(std::move(run), std::move(status), t_start, obs::now_ns());
      return;
    }

    // Hold back a run that byte-overlaps an in-flight run of the same
    // file: concurrent kernel writes to overlapping ranges would make
    // last-writer-wins submission-order-dependent. Adjacent runs of a
    // sequential stream never overlap, so this almost never fires.
    const std::uint64_t run_end = run.offset + run.total;
    const FileEntry* file = run.jobs.front().file.get();
    while (overlaps_inflight(file, run.offset, run_end)) reap(/*wait=*/true);

    while (inflight_.load(std::memory_order_relaxed) >= capacity()) reap(/*wait=*/true);

    auto rs = std::make_unique<RunState>();
    rs->run = std::move(run);
    rs->file = file;
    rs->end = run_end;
    rs->t_start = obs::now_ns();

    const unsigned tail = sq_local_tail_;
    io_uring_sqe* sqe = &sqes_[tail & *sq_mask_];
    std::memset(sqe, 0, sizeof(*sqe));

    const Chunk& first = *rs->run.jobs.front().chunk;
    if (rs->run.jobs.size() == 1 && buffers_registered_ &&
        first.pool_index() != Chunk::kNoPoolIndex) {
      // Registered chunk: pre-pinned pages, no per-IO translate.
      sqe->opcode = IORING_OP_WRITE_FIXED;
      sqe->addr = reinterpret_cast<std::uint64_t>(first.payload().data());
      sqe->len = static_cast<std::uint32_t>(first.fill());
      sqe->buf_index = first.pool_index();
    } else {
      rs->iov.resize(rs->run.jobs.size());
      for (std::size_t i = 0; i < rs->run.jobs.size(); ++i) {
        const auto payload = rs->run.jobs[i].chunk->payload();
        rs->iov[i].iov_base = const_cast<std::byte*>(payload.data());
        rs->iov[i].iov_len = payload.size();
      }
      sqe->opcode = IORING_OP_WRITEV;
      sqe->addr = reinterpret_cast<std::uint64_t>(rs->iov.data());
      sqe->len = static_cast<std::uint32_t>(rs->iov.size());
    }
    const int slot = file_slot(fd);
    if (slot >= 0) {
      sqe->fd = slot;
      sqe->flags |= IOSQE_FIXED_FILE;
    } else {
      sqe->fd = fd;
    }
    sqe->off = rs->run.offset;
    sqe->user_data = reinterpret_cast<std::uint64_t>(rs.get());

    sq_array_[tail & *sq_mask_] = tail & *sq_mask_;
    sq_local_tail_ = tail + 1;
    store_release(sq_ktail_, sq_local_tail_);
    pending_sqes_ += 1;

    inflight_runs_.push_back(rs.release());
    inflight_.fetch_add(1, std::memory_order_relaxed);
  }

  void submit_read(ReadRun run) override {
    const int fd = backend_.raw_fd(run.file);
    if (fd < 0) {
      // Non-fd backend (MemBackend, decorators): read synchronously so
      // wrapper semantics (fault injection, throttling) are preserved per
      // run exactly as under the sync engine.
      const std::uint64_t t_start = obs::now_ns();
      Result<std::size_t> nread = backend_read_run(backend_, run);
      read_complete_(std::move(run), std::move(nread), t_start, obs::now_ns());
      return;
    }

    // No overlap holdback: reads never reorder against each other, and
    // the prefetcher only submits ranges its coherence check has already
    // proven durable (never ranges with queued writes in flight).
    while (inflight_.load(std::memory_order_relaxed) >= capacity()) reap(/*wait=*/true);

    auto rs = std::make_unique<RunState>();
    rs->is_read = true;
    rs->read = std::move(run);
    rs->t_start = obs::now_ns();

    const unsigned tail = sq_local_tail_;
    io_uring_sqe* sqe = &sqes_[tail & *sq_mask_];
    std::memset(sqe, 0, sizeof(*sqe));

    if (rs->read.segs.size() == 1 && buffers_registered_ &&
        rs->read.buf_index != Chunk::kNoPoolIndex) {
      // Registered pool chunk as destination: pre-pinned pages.
      sqe->opcode = IORING_OP_READ_FIXED;
      sqe->addr = reinterpret_cast<std::uint64_t>(rs->read.segs.front().dst);
      sqe->len = static_cast<std::uint32_t>(rs->read.segs.front().len);
      sqe->buf_index = rs->read.buf_index;
    } else {
      rs->iov.resize(rs->read.segs.size());
      for (std::size_t i = 0; i < rs->read.segs.size(); ++i) {
        rs->iov[i].iov_base = rs->read.segs[i].dst;
        rs->iov[i].iov_len = rs->read.segs[i].len;
      }
      sqe->opcode = IORING_OP_READV;
      sqe->addr = reinterpret_cast<std::uint64_t>(rs->iov.data());
      sqe->len = static_cast<std::uint32_t>(rs->iov.size());
    }
    const int slot = file_slot(fd);
    if (slot >= 0) {
      sqe->fd = slot;
      sqe->flags |= IOSQE_FIXED_FILE;
    } else {
      sqe->fd = fd;
    }
    sqe->off = rs->read.offset;
    sqe->user_data = reinterpret_cast<std::uint64_t>(rs.get());

    sq_array_[tail & *sq_mask_] = tail & *sq_mask_;
    sq_local_tail_ = tail + 1;
    store_release(sq_ktail_, sq_local_tail_);
    pending_sqes_ += 1;

    inflight_runs_.push_back(rs.release());
    inflight_.fetch_add(1, std::memory_order_relaxed);
  }

  void flush() override {
    while (pending_sqes_ > 0) {
      const int ret = sys_io_uring_enter(ring_fd_, pending_sqes_, 0, 0);
      if (ret < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EBUSY) {
          // CQ backpressure: make room, then resubmit.
          reap(/*wait=*/true);
          continue;
        }
        // Submission rejected outright (should not happen for WRITEV on a
        // probed ring): fail the queued runs through the normal completion
        // path rather than wedging the worker.
        fail_pending(errno);
        return;
      }
      if (obs_.sqe_batch != nullptr) obs_.sqe_batch->record(pending_sqes_);
      pending_sqes_ -= static_cast<unsigned>(ret);
    }
    if (obs_.inflight_depth != nullptr) {
      obs_.inflight_depth->record(inflight_.load(std::memory_order_relaxed));
    }
  }

  void reap(bool wait) override {
    flush();
    if (inflight_.load(std::memory_order_relaxed) == 0) return;

    unsigned head = *cq_khead_;  // single consumer: plain read of our own index
    if (wait && head == load_acquire(cq_ktail_)) {
      const std::uint64_t t0 = obs::now_ns();
      while (sys_io_uring_enter(ring_fd_, 0, 1, IORING_ENTER_GETEVENTS) < 0 &&
             errno == EINTR) {
      }
      if (obs_.cqe_wait_ns != nullptr) obs_.cqe_wait_ns->record(obs::now_ns() - t0);
    }
    unsigned tail = load_acquire(cq_ktail_);
    while (head != tail) {
      const io_uring_cqe& cqe = cqes_[head & *cq_mask_];
      handle_cqe(cqe);
      head += 1;
      store_release(cq_khead_, head);
      tail = load_acquire(cq_ktail_);
    }
  }

  std::size_t inflight() const override { return inflight_.load(std::memory_order_relaxed); }

  /// Effective depth: the runtime soft cap, never above the ring actually
  /// allocated at mount. Lowering it does not cancel in-flight runs; the
  /// worker just stops submitting until inflight drains below the cap.
  std::size_t capacity() const override {
    return std::min<std::size_t>(depth_, soft_depth_.load(std::memory_order_relaxed));
  }

  unsigned set_depth(unsigned depth) override {
    const unsigned effective = std::clamp(depth, 1u, depth_);
    soft_depth_.store(effective, std::memory_order_relaxed);
    return effective;
  }

  const char* name() const override { return "uring"; }

  void forget_file(BackendFile file) override {
    const int fd = backend_.raw_fd(file);
    if (fd < 0) return;
    std::lock_guard lock(files_mu_);
    auto it = fd_slots_.find(fd);
    if (it == fd_slots_.end()) return;
    // Point the slot back at nothing before the fd number can be reused by
    // a later open — a stale registered file would silently write to the
    // old (possibly deleted) inode.
    int minus_one = -1;
    io_uring_files_update upd{};
    upd.offset = static_cast<std::uint32_t>(it->second);
    upd.fds = reinterpret_cast<std::uint64_t>(&minus_one);
    (void)sys_io_uring_register(ring_fd_, IORING_REGISTER_FILES_UPDATE, &upd, 1);
    free_slots_.push_back(it->second);
    fd_slots_.erase(it);
  }

 private:
  struct RunState {
    bool is_read = false;  ///< discriminates run (write) vs read below
    IoRun run;
    ReadRun read;
    std::vector<struct iovec> iov;  ///< must outlive the SQE for WRITEV/READV
    const FileEntry* file = nullptr;  ///< writes only (overlap holdback)
    std::uint64_t end = 0;  ///< run.offset + run.total (overlap check)
    std::uint64_t t_start = 0;
  };

  UringEngine(int ring_fd, unsigned depth, BackendFs& backend, IoEngineObs obs,
              CompleteFn complete)
      : ring_fd_(ring_fd),
        depth_(depth),
        soft_depth_(depth),
        backend_(backend),
        obs_(obs),
        complete_(std::move(complete)) {}

  bool map_rings(const io_uring_params& p) {
    sq_bytes_ = p.sq_off.array + p.sq_entries * sizeof(std::uint32_t);
    cq_bytes_ = p.cq_off.cqes + p.cq_entries * sizeof(io_uring_cqe);
    const bool single_mmap = (p.features & IORING_FEAT_SINGLE_MMAP) != 0;
    if (single_mmap) sq_bytes_ = cq_bytes_ = std::max(sq_bytes_, cq_bytes_);

    sq_ptr_ = ::mmap(nullptr, sq_bytes_, PROT_READ | PROT_WRITE, MAP_SHARED | MAP_POPULATE,
                     ring_fd_, IORING_OFF_SQ_RING);
    if (sq_ptr_ == MAP_FAILED) {
      sq_ptr_ = nullptr;
      return false;
    }
    if (single_mmap) {
      cq_ptr_ = sq_ptr_;
    } else {
      cq_ptr_ = ::mmap(nullptr, cq_bytes_, PROT_READ | PROT_WRITE, MAP_SHARED | MAP_POPULATE,
                       ring_fd_, IORING_OFF_CQ_RING);
      if (cq_ptr_ == MAP_FAILED) {
        cq_ptr_ = nullptr;
        return false;
      }
    }
    sqes_bytes_ = p.sq_entries * sizeof(io_uring_sqe);
    sqes_ = static_cast<io_uring_sqe*>(::mmap(nullptr, sqes_bytes_, PROT_READ | PROT_WRITE,
                                              MAP_SHARED | MAP_POPULATE, ring_fd_,
                                              IORING_OFF_SQES));
    if (sqes_ == MAP_FAILED) {
      sqes_ = nullptr;
      return false;
    }

    auto* sq = static_cast<std::uint8_t*>(sq_ptr_);
    sq_khead_ = reinterpret_cast<unsigned*>(sq + p.sq_off.head);
    sq_ktail_ = reinterpret_cast<unsigned*>(sq + p.sq_off.tail);
    sq_mask_ = reinterpret_cast<unsigned*>(sq + p.sq_off.ring_mask);
    sq_array_ = reinterpret_cast<unsigned*>(sq + p.sq_off.array);
    sq_local_tail_ = *sq_ktail_;

    auto* cq = static_cast<std::uint8_t*>(cq_ptr_);
    cq_khead_ = reinterpret_cast<unsigned*>(cq + p.cq_off.head);
    cq_ktail_ = reinterpret_cast<unsigned*>(cq + p.cq_off.tail);
    cq_mask_ = reinterpret_cast<unsigned*>(cq + p.cq_off.ring_mask);
    cqes_ = reinterpret_cast<io_uring_cqe*>(cq + p.cq_off.cqes);
    return true;
  }

  void register_buffers(const std::vector<ChunkRegion>& regions) {
    if (regions.empty() || regions.size() > 1024) return;
    std::vector<struct iovec> iov(regions.size());
    for (std::size_t i = 0; i < regions.size(); ++i) {
      iov[i].iov_base = const_cast<std::byte*>(regions[i].data);
      iov[i].iov_len = regions[i].len;
    }
    // "Where the kernel allows": a refused registration (memlock limits,
    // old kernels) just means plain WRITEV for single-chunk runs too.
    buffers_registered_ = sys_io_uring_register(ring_fd_, IORING_REGISTER_BUFFERS, iov.data(),
                                                static_cast<unsigned>(iov.size())) == 0;
  }

  void register_file_table() {
    std::vector<int> fds(kFileSlots, -1);
    if (sys_io_uring_register(ring_fd_, IORING_REGISTER_FILES, fds.data(), kFileSlots) != 0) {
      return;  // no sparse-table support: plain fds in every SQE
    }
    files_registered_ = true;
    free_slots_.reserve(kFileSlots);
    for (int s = static_cast<int>(kFileSlots) - 1; s >= 0; --s) free_slots_.push_back(s);
  }

  /// Registered-file slot for `fd` (claiming one on first sight), or -1
  /// when the table is off/full or the update is refused.
  int file_slot(int fd) {
    if (!files_registered_) return -1;
    std::lock_guard lock(files_mu_);
    auto it = fd_slots_.find(fd);
    if (it != fd_slots_.end()) return it->second;
    if (free_slots_.empty()) return -1;
    const int slot = free_slots_.back();
    io_uring_files_update upd{};
    upd.offset = static_cast<std::uint32_t>(slot);
    upd.fds = reinterpret_cast<std::uint64_t>(&fd);
    if (sys_io_uring_register(ring_fd_, IORING_REGISTER_FILES_UPDATE, &upd, 1) != 1) {
      return -1;
    }
    free_slots_.pop_back();
    fd_slots_.emplace(fd, slot);
    return slot;
  }

  bool overlaps_inflight(const FileEntry* file, std::uint64_t offset, std::uint64_t end) const {
    for (const RunState* rs : inflight_runs_) {
      if (rs->file == file && offset < rs->end && rs->run.offset < end) return true;
    }
    return false;
  }

  void handle_cqe(const io_uring_cqe& cqe) {
    auto* rs = reinterpret_cast<RunState*>(static_cast<std::uintptr_t>(cqe.user_data));
    const std::int32_t res = cqe.res;
    finish_run(rs, res);
  }

  void finish_run(RunState* rs, std::int32_t res) {
    const std::uint64_t t_done = obs::now_ns();
    if (rs->is_read) {
      drop_inflight(rs);
      if (res < 0) {
        read_complete_(std::move(rs->read), Error{-res, "io_uring read"}, rs->t_start, t_done);
      } else if (static_cast<std::uint64_t>(res) < rs->read.total) {
        // Async short read: resume synchronously. The resume itself stops
        // at EOF, so a short final result is the file ending, not a bug.
        Result<std::size_t> nread = finish_read_short(*rs, static_cast<std::size_t>(res));
        read_complete_(std::move(rs->read), std::move(nread), rs->t_start, t_done);
      } else {
        read_complete_(std::move(rs->read), static_cast<std::size_t>(res), rs->t_start,
                       t_done);
      }
      delete rs;
      return;
    }
    Status status;
    if (res < 0) {
      status = Error{-res, "io_uring write " + rs->run.jobs.front().file->path()};
    } else if (static_cast<std::uint64_t>(res) < rs->run.total) {
      // Async short write: complete the remainder synchronously through
      // the backend (same resume semantics as PosixBackend::pwritev).
      status = finish_short(*rs, static_cast<std::size_t>(res));
    }
    drop_inflight(rs);
    complete_(std::move(rs->run), std::move(status), rs->t_start, t_done);
    delete rs;
  }

  Result<std::size_t> finish_read_short(RunState& rs, std::size_t got) {
    ReadRun rest;
    rest.file = rs.read.file;
    rest.offset = rs.read.offset + got;
    std::size_t skip = got;
    for (const ReadSeg& seg : rs.read.segs) {
      if (skip >= seg.len) {
        skip -= seg.len;
        continue;
      }
      rest.segs.push_back(ReadSeg{seg.dst + skip, seg.len - skip});
      skip = 0;
    }
    rest.total = rs.read.total - got;
    auto r = backend_read_run(backend_, rest);
    if (!r.ok()) return r;
    return got + r.value();
  }

  Status finish_short(RunState& rs, std::size_t written) {
    const BackendFile file = rs.run.jobs.front().file->backend_file();
    std::vector<BackendIoVec> rest;
    rest.reserve(rs.run.jobs.size());
    std::size_t skip = written;
    for (const WriteJob& job : rs.run.jobs) {
      const auto payload = job.chunk->payload();
      if (skip >= payload.size()) {
        skip -= payload.size();
        continue;
      }
      rest.push_back(BackendIoVec{payload.data() + skip, payload.size() - skip});
      skip = 0;
    }
    return backend_.pwritev(file, rest, rs.run.offset + written);
  }

  void drop_inflight(RunState* rs) {
    for (std::size_t i = 0; i < inflight_runs_.size(); ++i) {
      if (inflight_runs_[i] == rs) {
        inflight_runs_[i] = inflight_runs_.back();
        inflight_runs_.pop_back();
        break;
      }
    }
    inflight_.fetch_sub(1, std::memory_order_relaxed);
  }

  /// Fails every queued-but-unsubmittable run with `err` through the
  /// normal completion path (sticky FileEntry error once per chunk).
  void fail_pending(int err) {
    // The newest pending_sqes_ entries of inflight_runs_ are the ones the
    // kernel never accepted; CQEs will not arrive for them.
    while (pending_sqes_ > 0 && !inflight_runs_.empty()) {
      RunState* rs = inflight_runs_.back();
      inflight_runs_.pop_back();
      inflight_.fetch_sub(1, std::memory_order_relaxed);
      pending_sqes_ -= 1;
      sq_local_tail_ -= 1;
      store_release(sq_ktail_, sq_local_tail_);
      const std::uint64_t t_done = obs::now_ns();
      if (rs->is_read) {
        read_complete_(std::move(rs->read), Error{err, "io_uring submit"}, rs->t_start,
                       t_done);
      } else {
        complete_(std::move(rs->run), Error{err, "io_uring submit"}, rs->t_start, t_done);
      }
      delete rs;
    }
  }

  const int ring_fd_;
  const unsigned depth_;
  /// Runtime soft cap on capacity() (knob plane); in [1, depth_]. Written
  /// by tune callers, read by the owning worker every submit window.
  std::atomic<unsigned> soft_depth_;
  BackendFs& backend_;
  IoEngineObs obs_;
  CompleteFn complete_;

  void* sq_ptr_ = nullptr;
  void* cq_ptr_ = nullptr;
  std::size_t sq_bytes_ = 0;
  std::size_t cq_bytes_ = 0;
  io_uring_sqe* sqes_ = nullptr;
  std::size_t sqes_bytes_ = 0;

  unsigned* sq_khead_ = nullptr;
  unsigned* sq_ktail_ = nullptr;
  unsigned* sq_mask_ = nullptr;
  unsigned* sq_array_ = nullptr;
  unsigned sq_local_tail_ = 0;
  unsigned* cq_khead_ = nullptr;
  unsigned* cq_ktail_ = nullptr;
  unsigned* cq_mask_ = nullptr;
  io_uring_cqe* cqes_ = nullptr;

  unsigned pending_sqes_ = 0;
  std::atomic<std::size_t> inflight_{0};
  std::vector<RunState*> inflight_runs_;

  bool buffers_registered_ = false;
  bool files_registered_ = false;
  std::mutex files_mu_;  ///< fd->slot map; forget_file runs on app threads
  std::unordered_map<int, int> fd_slots_;
  std::vector<int> free_slots_;
};

}  // namespace

std::unique_ptr<IoEngine> make_uring_engine(unsigned depth, BackendFs& backend,
                                            std::vector<ChunkRegion> regions, IoEngineObs obs,
                                            IoEngine::CompleteFn complete) {
  return UringEngine::create(depth, backend, std::move(regions), obs, std::move(complete));
}

}  // namespace crfs

#else  // !CRFS_HAVE_URING

namespace crfs {

std::unique_ptr<IoEngine> make_uring_engine(unsigned, BackendFs&, std::vector<ChunkRegion>,
                                            IoEngineObs, IoEngine::CompleteFn) {
  return nullptr;  // platform without io_uring headers: sync fallback
}

}  // namespace crfs

#endif
