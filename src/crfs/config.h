// CRFS mount configuration.
//
// Defaults follow the paper's evaluation settings (§V-B): 4 MB chunks, a
// 16 MB buffer pool, 4 IO threads, and FUSE "big_writes" enabled.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/units.h"
#include "obs/health.h"
#include "obs/slo.h"

namespace crfs {

/// Backend-submission strategy of the IO pool (docs/PERFORMANCE.md
/// "IO engines"). kUring is a request, not a guarantee: at mount time the
/// pool probes io_uring and falls back to kSync silently when the kernel
/// refuses (stats/Prometheus report the engine actually running).
enum class IoEngineKind { kSync, kUring };

inline const char* io_engine_name(IoEngineKind k) {
  return k == IoEngineKind::kUring ? "uring" : "sync";
}

struct Config {
  /// Size of each aggregation chunk. The paper fixes 4 MB after the Fig 5
  /// sweep ("larger chunk size is generally more favorable").
  std::size_t chunk_size = 4 * MiB;

  /// Total buffer-pool size; pool_size / chunk_size chunks are carved at
  /// mount time. Paper: 16 MB ("CRFS shouldn't occupy too much memory
  /// since a real parallel application can use a large portion of the
  /// available memory").
  std::size_t pool_size = 16 * MiB;

  /// Number of IO worker threads draining the work queue. This is the
  /// concurrency throttle toward the backend; the paper finds 4 "generally
  /// yields the best throughput".
  unsigned io_threads = 4;

  /// Buffer-pool shard count (docs/PERFORMANCE.md). The free list is
  /// split into this many independently locked shards so concurrent
  /// streams acquire/release chunks without a global pool lock. 0 (the
  /// default) auto-sizes from hardware concurrency, capped at 8; the
  /// effective count never exceeds the number of chunks. Mount option
  /// `pool_shards=N`.
  std::size_t pool_shards = 0;

  /// Max chunks an IO worker drains from the work queue per lock
  /// acquisition (docs/PERFORMANCE.md). Batches are grouped by file
  /// (FIFO order kept within a file) and adjacent chunks coalesce into
  /// one vectored backend write. 1 disables batching (one pop, one
  /// pwrite — the pre-batching behaviour). The effective batch is capped
  /// at half the pool's chunk count so a single batch can never park the
  /// whole pool behind one coalesced write. Mount option `io_batch=N`.
  unsigned io_batch = 8;

  /// IO engine the workers submit through (docs/PERFORMANCE.md
  /// "IO engines"). kSync is the paper's behaviour — one blocking
  /// pwrite/pwritev per coalesced run. kUring keeps up to `uring_depth`
  /// runs in flight per worker via raw io_uring, with runtime feature
  /// detection and silent fallback to sync. Mount option
  /// `io_engine=sync|uring`.
  IoEngineKind io_engine = IoEngineKind::kSync;

  /// Submission-queue depth per worker ring when io_engine=uring. Mount
  /// option `uring_depth=N`.
  unsigned uring_depth = 64;

  /// Large-write copy bypass: an application write of at least chunk_size
  /// bytes landing exactly at the file's append point skips the
  /// buffer-pool memcpy and is issued to the backend directly (counted in
  /// crfs.write.bypass_bytes). Mount option `no_bypass` disables it.
  bool large_write_bypass = true;

  /// When true, a read() on a file with buffered dirty data flushes that
  /// data first so reads always observe prior writes. The paper's CRFS
  /// passes reads straight through (restart only happens after close, so
  /// buffered data can never be missed there); set to false to reproduce
  /// that exact behaviour. Default true: least surprise for general use.
  bool flush_before_read = true;

  /// Restart-side sequential readahead (docs/PERFORMANCE.md "Read path
  /// and restore"): when a file's reads form a forward scan, keep up to
  /// `readahead_window` chunk-sized reads in flight through a dedicated
  /// read engine (same sync/uring choice as io_engine), parking the
  /// results in pool-backed cache slots. Runtime-tunable via the
  /// `readahead` knob. Mount option `readahead` / `no_readahead`.
  bool readahead = true;

  /// Max chunk reads kept in flight ahead of a sequential reader (also
  /// bounded by the read engine's ring depth and by free pool chunks —
  /// prefetch never blocks checkpoint writers). Runtime-tunable via the
  /// `readahead_window` knob. Mount option `readahead_window=N`.
  unsigned readahead_window = 4;

  /// Observability (docs/OBSERVABILITY.md). Counters and per-stage latency
  /// histograms (the crfs.* registry) are always on — their hot-path cost
  /// is a handful of relaxed atomics per write. `enable_tracing`
  /// additionally captures begin/end span events (write/flush/pwrite/
  /// drain) into per-thread ring buffers for Chrome-trace export; it is
  /// validated off by default so the hot path pays only counters.
  bool enable_tracing = false;

  /// Capacity of each per-thread trace ring, in events. Older events are
  /// overwritten once a thread exceeds this; 64Ki events cover a multi-GB
  /// checkpoint epoch at chunk granularity.
  std::size_t trace_ring_events = 64 * 1024;

  /// Live telemetry (docs/OBSERVABILITY.md): sampling period in
  /// milliseconds for the background obs::Sampler thread. 0 (default)
  /// disables the sampler entirely — no thread, no allocation, zero
  /// write-path effect. Mount option `sample_ms=N`.
  unsigned sample_ms = 0;

  /// Frames kept in the sampler's time-series ring (oldest evicted).
  /// 600 frames ≈ one minute of history at sample_ms=100.
  std::size_t sample_ring = 600;

  /// Bounded health/error event log capacity (obs::EventBuffer). The log
  /// exists even with the sampler off: IO-thread pwrite failures are
  /// always recorded there with path/offset/errno.
  std::size_t event_capacity = 256;

  /// Health-rule thresholds evaluated per sample (obs::HealthMonitor);
  /// only consulted when sample_ms > 0.
  obs::HealthConfig health{};

  /// Checkpoint-epoch attribution (docs/OBSERVABILITY.md "Epoch ledger").
  /// When on (default), Crfs::open resolves each writable file to an
  /// obs::EpochState (cold path) and the pipeline attributes bytes,
  /// chunks, pool stalls, and durability lag to it with relaxed atomics;
  /// finished epochs land in a bounded ledger (Crfs::epochs(),
  /// stats_json "epochs", `crfsctl report`). Mount option `no_epochs`
  /// turns the whole layer off (the bench guard's baseline).
  bool epoch_tracking = true;

  /// Open/close quiet window after which the next writable open starts a
  /// new automatic epoch. Mount option `epoch_gap_ms=N`.
  unsigned epoch_gap_ms = 500;

  /// Finished EpochRecords kept (oldest evicted). Mount option
  /// `epoch_ledger=N`.
  std::size_t epoch_ledger = 64;

  /// Control-file path for explicit epoch markers: writing "begin
  /// [label]" / "end" to this path via the normal write API drives
  /// Crfs::epoch_begin/epoch_end without touching the backend.
  std::string epoch_marker_path = ".crfs_epoch";

  /// Flight recorder (docs/OBSERVABILITY.md "Postmortem"): when
  /// non-empty, the mount keeps a pre-rendered postmortem document in a
  /// reserved buffer, refreshes it on epoch transitions / IO completions
  /// (throttled) / critical events, installs fatal-signal handlers, and
  /// dumps it to this path on SIGABRT/SIGSEGV/SIGBUS/SIGFPE/SIGILL or an
  /// error-burst health event. Mount option `postmortem=<path>`.
  std::string postmortem_path{};

  /// Minimum interval between IO-completion-driven postmortem refreshes.
  /// 0 re-renders on every completed backend write (tests); the default
  /// bounds the refresh cost to ~20 renders/s.
  unsigned postmortem_refresh_ms = 50;

  /// Reserved bytes per flight-recorder buffer (two are kept). A rendered
  /// document larger than this is dropped, keeping the previous one.
  std::size_t postmortem_buffer = 512 * 1024;

  /// Feedback controller (docs/OBSERVABILITY.md "Control plane"): when
  /// true, an obs::Controller runs on the Sampler's tick path and retunes
  /// the knob plane under pipeline pathology (grow the pool on
  /// starvation, widen submission when the queue rises against a healthy
  /// backend, shed toward the paper's §IV throttling when the backend is
  /// the bottleneck). Every decision — applied, clamped, or vetoed — is
  /// audited in the decision log, crfs.ctl.* metrics, stats_json, and the
  /// postmortem. Requires sample_ms > 0. Mount option `controller=on`.
  bool controller = false;

  /// Upper bound (bytes) for runtime buffer-pool growth via the knob
  /// plane; requests above it are clamped. 0 auto-sizes to 4x pool_size.
  std::size_t tune_pool_max = 0;

  /// Upper bound for runtime io_batch raises via the knob plane.
  unsigned tune_io_batch_max = 256;

  /// Tail-latency forensics (docs/OBSERVABILITY.md "Slow exemplars"):
  /// a chunk whose copy-in -> durable lag OR backend device time reaches
  /// this many milliseconds has its full causal chain (all stage stamps,
  /// queue depth, free chunks, knob generation) captured into a bounded
  /// exemplar store, surfaced via stats_json "slow", `crfsctl slow`, and
  /// the postmortem. 0 disables capture (the store still exists so the
  /// JSON schema is stable). Runtime-tunable via the `slow_capture_ms`
  /// knob. Mount option `slow_capture_ms=N`.
  unsigned slow_capture_ms = 1000;

  /// Exemplars kept in the slow store (oldest evicted; `captured` keeps
  /// the lifetime total). Mount option `slow_exemplars=N`.
  std::size_t slow_exemplars = 32;

  /// Control-file path for runtime tuning: writing "knob=value" tokens
  /// (comma/whitespace separated) to this path via the normal write API
  /// drives Crfs::tune without touching the backend. Empty disables the
  /// shim; Crfs::tune and crfsctl tune keep working either way.
  std::string tune_marker_path = ".crfs_tune";

  /// Durable telemetry journal (docs/OBSERVABILITY.md "Durable journal"):
  /// when non-empty, an obs::Journal persists sample frames, events,
  /// finished epochs, and slow exemplars as CRC32-framed records under
  /// this directory (convention: `<mountdir>/.crfs/journal`), readable
  /// after the process is gone via `crfsctl timeline` / `crfsctl slo`.
  /// Mount option `journal=<dir>`.
  std::string journal_dir{};

  /// fsync cadence for the current journal segment, in milliseconds; 0
  /// never fsyncs mid-segment (rotation still seals finished segments).
  /// Runtime-tunable via the `journal_fsync_ms` knob. Mount option
  /// `journal_fsync_ms=N`.
  unsigned journal_fsync_ms = 1000;

  /// Background journal flusher cadence (pending frames -> segment file).
  unsigned journal_flush_ms = 200;

  /// Segment rotation size and total on-disk retention bound for the
  /// journal directory (oldest segments unlinked past the bound).
  std::size_t journal_segment_bytes = 1 * MiB;
  std::size_t journal_max_bytes = 16 * MiB;

  /// SLO burn-rate monitor (docs/OBSERVABILITY.md "SLOs and burn rates").
  /// A non-zero target enables that objective; any enabled objective
  /// requires sample_ms > 0 (the monitor runs on the Sampler tick path).
  /// Mount options `slo_lag_ms=`, `slo_stall_pct=`, `slo_ttfb_ms=`.
  unsigned slo_lag_ms = 0;     ///< durability-lag p99 target (ms)
  unsigned slo_stall_pct = 0;  ///< pool-stall wall-time share target (%)
  unsigned slo_ttfb_ms = 0;    ///< restore read p99 target (ms)

  /// Burn-rate window pair, seconds. Mount options `slo_short_s=`,
  /// `slo_long_s=`.
  unsigned slo_short_s = 300;
  unsigned slo_long_s = 3600;

  /// Tiered burst-buffer staging (docs/PERFORMANCE.md "Tiered staging").
  /// When non-empty, the mount composes a TieredBackend: writes land on
  /// this fast staging tier ("mem" = in-memory MemBackend, anything else
  /// = a directory for a local PosixBackend) and a background thread
  /// drains finalized epochs oldest-first to the slow remote tier.
  /// Mount option `stage=mem|<dir>`; `remote=<dir>` names the remote
  /// directory for tools that mount from options alone (crfsctl).
  std::string tier_stage{};
  std::string tier_remote{};

  /// Max staged bytes before writers block for eviction (0 = unbounded).
  /// Mount option `stage_cap=<size>`.
  std::size_t stage_cap = 0;

  /// Drain bandwidth cap toward the remote tier, MB/s (0 = unthrottled).
  /// Runtime-tunable via the `drain_mbps` knob. Mount option
  /// `drain_mbps=N`.
  unsigned drain_mbps = 0;

  /// Drain helper threads splitting one unit's runs. Runtime-tunable via
  /// the `drain_parallel` knob. Mount option `drain_parallel=N`.
  unsigned drain_parallel = 1;

  /// What fsync() promises under tiering: "stage" (fast, default) or
  /// "remote" (block until this file's staged bytes are remote-durable).
  /// Mount option `fsync_mode=stage|remote`.
  std::string fsync_mode = "stage";

  /// Validates invariants (chunk fits pool, nonzero sizes, etc.).
  Status validate() const {
    if (chunk_size == 0) return Error{EINVAL, "chunk_size must be > 0"};
    if (io_threads == 0) return Error{EINVAL, "io_threads must be > 0"};
    if (pool_size < chunk_size) {
      return Error{EINVAL, "pool_size must hold at least one chunk"};
    }
    if (io_batch == 0) return Error{EINVAL, "io_batch must be > 0"};
    if (uring_depth == 0 || uring_depth > 4096) {
      return Error{EINVAL, "uring_depth must be in [1, 4096]"};
    }
    if (readahead_window == 0 || readahead_window > 1024) {
      return Error{EINVAL, "readahead_window must be in [1, 1024]"};
    }
    if (enable_tracing && trace_ring_events == 0) {
      return Error{EINVAL, "trace_ring_events must be > 0 when tracing"};
    }
    if (sample_ms > 0 && sample_ring == 0) {
      return Error{EINVAL, "sample_ring must be > 0 when sampling"};
    }
    if (event_capacity == 0) return Error{EINVAL, "event_capacity must be > 0"};
    if (epoch_tracking && epoch_ledger == 0) {
      return Error{EINVAL, "epoch_ledger must be > 0 when epoch tracking is on"};
    }
    if (epoch_tracking && epoch_marker_path.empty()) {
      return Error{EINVAL, "epoch_marker_path must be set when epoch tracking is on"};
    }
    if (!postmortem_path.empty() && postmortem_buffer < 4096) {
      return Error{EINVAL, "postmortem_buffer must be >= 4096"};
    }
    if (controller && sample_ms == 0) {
      return Error{EINVAL, "controller=on requires sample_ms > 0"};
    }
    if (tune_io_batch_max == 0) {
      return Error{EINVAL, "tune_io_batch_max must be > 0"};
    }
    if (slow_exemplars == 0) {
      return Error{EINVAL, "slow_exemplars must be > 0"};
    }
    if (tune_pool_max != 0 && tune_pool_max < pool_size) {
      return Error{EINVAL, "tune_pool_max must be >= pool_size"};
    }
    if (!journal_dir.empty() && journal_segment_bytes == 0) {
      return Error{EINVAL, "journal_segment_bytes must be > 0"};
    }
    if (!journal_dir.empty() && journal_max_bytes < journal_segment_bytes) {
      return Error{EINVAL, "journal_max_bytes must be >= journal_segment_bytes"};
    }
    if ((slo_lag_ms > 0 || slo_stall_pct > 0 || slo_ttfb_ms > 0) && sample_ms == 0) {
      return Error{EINVAL, "slo_* targets require sample_ms > 0"};
    }
    if (slo_stall_pct > 100) {
      return Error{EINVAL, "slo_stall_pct must be in [0, 100]"};
    }
    if (slo_short_s == 0 || slo_long_s < slo_short_s) {
      return Error{EINVAL, "slo windows need 0 < slo_short_s <= slo_long_s"};
    }
    if (fsync_mode != "stage" && fsync_mode != "remote") {
      return Error{EINVAL, "fsync_mode must be stage or remote"};
    }
    if (drain_parallel == 0 || drain_parallel > 64) {
      return Error{EINVAL, "drain_parallel must be in [1, 64]"};
    }
    if (!tier_stage.empty() && stage_cap > 0 && stage_cap < chunk_size) {
      return Error{EINVAL, "stage_cap must be >= chunk_size"};
    }
    return {};
  }

  /// True when any SLO objective is enabled.
  bool slo_enabled() const {
    return slo_lag_ms > 0 || slo_stall_pct > 0 || slo_ttfb_ms > 0;
  }

  /// The obs::SloConfig this mount config implies.
  obs::SloConfig slo_config() const {
    obs::SloConfig slo;
    slo.lag_p99_ns = static_cast<std::uint64_t>(slo_lag_ms) * 1'000'000;
    slo.stall_ratio = static_cast<double>(slo_stall_pct) / 100.0;
    slo.ttfb_p99_ns = static_cast<std::uint64_t>(slo_ttfb_ms) * 1'000'000;
    slo.short_window_ns = static_cast<std::uint64_t>(slo_short_s) * 1'000'000'000;
    slo.long_window_ns = static_cast<std::uint64_t>(slo_long_s) * 1'000'000'000;
    return slo;
  }

  /// Number of chunks the pool will hold.
  std::size_t num_chunks() const { return pool_size / chunk_size; }

  std::string describe() const {
    return "chunk=" + format_bytes(chunk_size) + " pool=" + format_bytes(pool_size) +
           " io_threads=" + std::to_string(io_threads) +
           (pool_shards > 0 ? " pool_shards=" + std::to_string(pool_shards) : "") +
           (io_batch != 1 ? " io_batch=" + std::to_string(io_batch) : "") +
           (io_engine == IoEngineKind::kUring
                ? " io_engine=uring(depth=" + std::to_string(uring_depth) + ")"
                : "") +
           (!large_write_bypass ? " no_bypass" : "") +
           (!readahead ? " no_readahead" : "") +
           (readahead_window != 4 ? " readahead_window=" + std::to_string(readahead_window)
                                  : "") +
           (enable_tracing ? " tracing=on" : "") +
           (sample_ms > 0 ? " sample_ms=" + std::to_string(sample_ms) : "") +
           (slow_capture_ms != 1000
                ? " slow_capture_ms=" + std::to_string(slow_capture_ms)
                : "") +
           (controller ? " controller=on" : "") +
           (!epoch_tracking ? " epochs=off" : "") +
           (!postmortem_path.empty() ? " postmortem=" + postmortem_path : "") +
           (!journal_dir.empty() ? " journal=" + journal_dir : "") +
           (slo_enabled() ? " slo=lag:" + std::to_string(slo_lag_ms) +
                                "ms,stall:" + std::to_string(slo_stall_pct) +
                                "%,ttfb:" + std::to_string(slo_ttfb_ms) + "ms"
                          : "") +
           (!tier_stage.empty()
                ? " stage=" + tier_stage +
                      (!tier_remote.empty() ? " remote=" + tier_remote : "") +
                      (stage_cap > 0 ? " stage_cap=" + format_bytes(stage_cap) : "") +
                      (drain_mbps > 0 ? " drain_mbps=" + std::to_string(drain_mbps)
                                      : "") +
                      (drain_parallel != 1
                           ? " drain_parallel=" + std::to_string(drain_parallel)
                           : "") +
                      (fsync_mode != "stage" ? " fsync_mode=" + fsync_mode : "")
                : "");
  }
};

/// FUSE kernel-request parameters modelled by FuseShim.
struct FuseOptions {
  /// Maximum bytes per FUSE write request. Without "big_writes" the 2.6-era
  /// kernel splits application writes into single pages (4 KB); with it,
  /// requests carry up to 128 KB. The paper enables big_writes.
  bool big_writes = true;

  std::size_t max_write() const { return big_writes ? 128 * KiB : 4 * KiB; }
};

}  // namespace crfs
