// WorkQueue: FIFO of filled chunks awaiting backend writing (paper §IV-B,
// "Work Queue and IO Throttling").
//
// Producers are application threads (full chunks, and partial chunks at
// close/fsync); consumers are the IO thread pool. The queue is unbounded:
// backpressure is applied upstream by the finite BufferPool, never here —
// a chunk that exists always has a queue slot, so enqueue cannot block
// and close() cannot deadlock against a full queue.
#pragma once

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "crfs/chunk.h"
#include "obs/epoch.h"
#include "obs/metrics.h"

namespace crfs {

class FileEntry;  // defined in file_table.h

/// One unit of IO work: write `chunk`'s payload to `file`'s backend handle
/// at the chunk's recorded file offset.
struct WriteJob {
  std::shared_ptr<FileEntry> file;
  std::unique_ptr<Chunk> chunk;
  /// Epoch the chunk's bytes belong to (nullptr when epoch tracking is
  /// off). Captured at enqueue under the producer's agg_mu, so IO threads
  /// attribute durability without touching the file's lock or the
  /// tracker — and the state outlives any rotation that happens while
  /// the chunk is in flight.
  std::shared_ptr<obs::EpochState> epoch{};
  /// Chunk-lifecycle ledger stamps (obs::now_ns): push() stamps enqueue,
  /// pop_batch() stamps dequeue. The delta is queue residency; the wait
  /// histogram (when installed) records the same quantity mount-wide.
  std::uint64_t enqueue_ns = 0;
  std::uint64_t dequeue_ns = 0;
};

class WorkQueue {
 public:
  /// Appends a job and wakes one IO thread.
  void push(WriteJob job);

  /// Blocks for the next job; nullopt after shutdown once drained.
  std::optional<WriteJob> pop();

  /// Blocks for the first job, then greedily drains up to `max` jobs that
  /// are already queued — one lock acquisition for the whole batch, never
  /// waiting for stragglers. Returns empty only after shutdown once
  /// drained. The IO pool groups the batch by file and coalesces adjacent
  /// chunks into vectored backend writes (docs/PERFORMANCE.md).
  std::vector<WriteJob> pop_batch(std::size_t max);

  /// Non-blocking pop_batch: returns immediately (possibly empty) instead
  /// of waiting for the first job. Used by async IO engines that have
  /// completions to reap while the queue is momentarily dry.
  std::vector<WriteJob> try_pop_batch(std::size_t max);

  /// Lets pop() return nullopt once the queue is empty. Already-queued
  /// jobs are still handed out so teardown never loses buffered data.
  void shutdown();

  /// Installs the enqueue->pop wait histogram (crfs.queue.wait_ns). Call
  /// before any producer/consumer thread runs; the pointer is read
  /// without synchronization afterwards.
  void set_wait_histogram(obs::LatencyHistogram* hist) { wait_hist_ = hist; }

  std::size_t depth() const;
  std::uint64_t total_pushed() const;

 private:
  void drain_locked(std::vector<WriteJob>& batch, std::size_t max);
  void stamp_dequeued(std::vector<WriteJob>& batch);

  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::deque<WriteJob> jobs_;
  std::uint64_t pushed_ = 0;
  bool shutdown_ = false;
  obs::LatencyHistogram* wait_hist_ = nullptr;
};

}  // namespace crfs
