// Runtime-tunable knob plane (docs/OBSERVABILITY.md "Control plane").
//
// Mount-time Config froze every hot-path parameter; the KnobPlane makes a
// declared subset of them runtime-adjustable with an audit-friendly
// contract:
//
//   * every knob is registered with declared [min, max] bounds and an
//     ApplyFn that commits the new value to the live component (pool
//     resize, io_batch re-clamp, ring re-arm, sampler period, ...);
//   * each successful tune publishes a fresh immutable KnobSnapshot via an
//     atomic pointer swap, with a monotonically increasing generation
//     counter — readers (stats_json, the feedback controller, the write
//     path) take an acquire load and never block a writer;
//   * out-of-bounds requests are clamped, unknown knobs and apply-refusals
//     are vetoed, and every outcome is reported in a TuneResult the caller
//     records in the decision log.
//
// Snapshots are tiny (a generation plus one double per knob) and tunes
// are rare (human operators or a cooled-down controller), so superseded
// snapshots are simply retained for the mount's lifetime — that is what
// makes the reader side lock-free without a reclamation protocol.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace crfs {

/// Static description of one runtime-tunable knob.
struct KnobDef {
  std::string name;
  double min_value = 0.0;
  double max_value = 0.0;
  std::string unit;  ///< "chunks", "jobs", "sqes", "ms"
};

/// Immutable, atomically-published view of all knob values.
struct KnobSnapshot {
  std::uint64_t generation = 0;
  /// Sorted by knob name (registration order is sorted at publish).
  std::vector<std::pair<std::string, double>> values;

  /// Current value, or `fallback` when the knob is not defined.
  double get(std::string_view name, double fallback = 0.0) const;
};

/// Outcome of one tune request.
struct TuneResult {
  std::string knob;
  std::string outcome;  ///< "applied" | "clamped" | "vetoed"
  double requested = 0.0;
  double from = 0.0;
  double to = 0.0;
  std::string reason;  ///< clamp/veto detail; empty for a plain apply
  std::uint64_t generation = 0;  ///< generation after the tune landed

  bool ok() const { return outcome != "vetoed"; }
};

/// Registry of runtime-tunable knobs with bounds, apply callbacks, and a
/// lock-free snapshot for the read side. Writers (tune) serialize on an
/// internal mutex; the apply callback runs under it, so applies must not
/// re-enter the plane.
class KnobPlane {
 public:
  /// Commits `value` to the live component. Returns false to veto (fill
  /// `*reason`). An apply that can only partially honour the request
  /// (e.g. a pool shrink bounded by free chunks) writes what it actually
  /// achieved to `*achieved`, which is pre-set to `value`.
  using ApplyFn = std::function<bool(double value, double* achieved, std::string* reason)>;

  KnobPlane() = default;
  ~KnobPlane() = default;
  KnobPlane(const KnobPlane&) = delete;
  KnobPlane& operator=(const KnobPlane&) = delete;

  /// Registers a knob. Call during construction, before concurrent use.
  void define(KnobDef def, double initial, ApplyFn apply);

  /// Clamps `requested` to the knob's bounds, runs the apply callback,
  /// and on success publishes a new snapshot with a bumped generation.
  /// Vetoes leave the value and generation untouched.
  TuneResult tune(std::string_view name, double requested);

  /// Lock-free acquire load of the current snapshot. Never null after the
  /// first define(); callers during construction get an empty snapshot.
  const KnobSnapshot* snapshot() const;

  std::uint64_t generation() const { return snapshot()->generation; }

  /// Declared knob table (bounds and units), sorted by name.
  std::vector<KnobDef> defs() const;

  /// {"generation":N,"knobs":[{"name":...,"value":...,"min":...,
  ///  "max":...,"unit":...},...]} — knobs sorted by name.
  std::string to_json() const;

 private:
  void publish_locked();

  mutable std::mutex mu_;
  std::vector<KnobDef> defs_;       // sorted by name
  std::vector<ApplyFn> applies_;    // parallel to defs_
  std::vector<double> values_;      // parallel to defs_
  std::uint64_t generation_ = 0;
  std::atomic<const KnobSnapshot*> current_{nullptr};
  std::vector<std::unique_ptr<KnobSnapshot>> history_;
  KnobSnapshot empty_{};
};

}  // namespace crfs
