#include "crfs/mount_options.h"

#include <cerrno>
#include <charconv>

namespace crfs {
namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) s.remove_suffix(1);
  return s;
}

}  // namespace

Result<MountOptions> parse_mount_options(std::string_view text) {
  MountOptions out;

  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string_view::npos) comma = text.size();
    const std::string_view item = trim(text.substr(pos, comma - pos));
    pos = comma + 1;
    if (item.empty()) {
      if (comma == text.size()) break;
      continue;
    }

    const std::size_t eq = item.find('=');
    const std::string_view key = eq == std::string_view::npos ? item : item.substr(0, eq);
    const std::string_view value =
        eq == std::string_view::npos ? std::string_view{} : item.substr(eq + 1);

    auto need_size = [&](std::size_t& dest) -> Status {
      const auto parsed = parse_bytes(value);
      if (!parsed) {
        return Error{EINVAL, "bad size for option '" + std::string(key) + "': '" +
                                 std::string(value) + "'"};
      }
      dest = static_cast<std::size_t>(*parsed);
      return {};
    };

    if (key == "chunk") {
      CRFS_RETURN_IF_ERROR(need_size(out.config.chunk_size));
    } else if (key == "pool") {
      CRFS_RETURN_IF_ERROR(need_size(out.config.pool_size));
    } else if (key == "threads") {
      unsigned threads = 0;
      const auto* begin = value.data();
      const auto* end = value.data() + value.size();
      const auto [ptr, ec] = std::from_chars(begin, end, threads);
      if (ec != std::errc{} || ptr != end || threads == 0) {
        return Error{EINVAL, "bad thread count: '" + std::string(value) + "'"};
      }
      out.config.io_threads = threads;
    } else if (key == "pool_shards") {
      std::size_t shards = 0;
      const auto* begin = value.data();
      const auto* end = value.data() + value.size();
      const auto [ptr, ec] = std::from_chars(begin, end, shards);
      if (ec != std::errc{} || ptr != end) {
        return Error{EINVAL, "bad shard count: '" + std::string(value) + "'"};
      }
      out.config.pool_shards = shards;  // 0 = auto
    } else if (key == "io_batch") {
      unsigned batch = 0;
      const auto* begin = value.data();
      const auto* end = value.data() + value.size();
      const auto [ptr, ec] = std::from_chars(begin, end, batch);
      if (ec != std::errc{} || ptr != end || batch == 0) {
        return Error{EINVAL, "bad io_batch: '" + std::string(value) + "'"};
      }
      out.config.io_batch = batch;
    } else if (key == "io_engine") {
      if (value == "sync") {
        out.config.io_engine = IoEngineKind::kSync;
      } else if (value == "uring") {
        out.config.io_engine = IoEngineKind::kUring;
      } else {
        return Error{EINVAL, "bad io_engine (want sync|uring): '" + std::string(value) + "'"};
      }
    } else if (key == "uring_depth") {
      unsigned depth = 0;
      const auto* begin = value.data();
      const auto* end = value.data() + value.size();
      const auto [ptr, ec] = std::from_chars(begin, end, depth);
      if (ec != std::errc{} || ptr != end || depth == 0) {
        return Error{EINVAL, "bad uring_depth: '" + std::string(value) + "'"};
      }
      out.config.uring_depth = depth;
    } else if (key == "bypass") {
      out.config.large_write_bypass = true;
    } else if (key == "no_bypass") {
      out.config.large_write_bypass = false;
    } else if (key == "readahead") {
      out.config.readahead = true;
    } else if (key == "no_readahead") {
      out.config.readahead = false;
    } else if (key == "readahead_window") {
      unsigned window = 0;
      const auto* begin = value.data();
      const auto* end = value.data() + value.size();
      const auto [ptr, ec] = std::from_chars(begin, end, window);
      if (ec != std::errc{} || ptr != end || window == 0) {
        return Error{EINVAL, "bad readahead_window: '" + std::string(value) + "'"};
      }
      out.config.readahead_window = window;
    } else if (key == "epoch_gap_ms" || key == "epoch_ledger") {
      unsigned parsed = 0;
      const auto* begin = value.data();
      const auto* end = value.data() + value.size();
      const auto [ptr, ec] = std::from_chars(begin, end, parsed);
      if (ec != std::errc{} || ptr != end) {
        return Error{EINVAL, "bad value for option '" + std::string(key) + "': '" +
                                 std::string(value) + "'"};
      }
      if (key == "epoch_gap_ms") {
        out.config.epoch_gap_ms = parsed;
      } else {
        out.config.epoch_ledger = parsed;
      }
    } else if (key == "epochs") {
      out.config.epoch_tracking = true;
    } else if (key == "no_epochs") {
      out.config.epoch_tracking = false;
    } else if (key == "postmortem") {
      if (value.empty()) {
        return Error{EINVAL, "postmortem= needs a file path"};
      }
      out.config.postmortem_path = std::string(value);
    } else if (key == "postmortem_refresh_ms") {
      unsigned parsed = 0;
      const auto* begin = value.data();
      const auto* end = value.data() + value.size();
      const auto [ptr, ec] = std::from_chars(begin, end, parsed);
      if (ec != std::errc{} || ptr != end) {
        return Error{EINVAL, "bad value for option '" + std::string(key) + "': '" +
                                 std::string(value) + "'"};
      }
      out.config.postmortem_refresh_ms = parsed;
    } else if (key == "controller") {
      if (value.empty() || value == "on") {
        out.config.controller = true;
      } else if (value == "off") {
        out.config.controller = false;
      } else {
        return Error{EINVAL, "bad controller (want on|off): '" + std::string(value) + "'"};
      }
    } else if (key == "no_controller") {
      out.config.controller = false;
    } else if (key == "tune_pool_max") {
      CRFS_RETURN_IF_ERROR(need_size(out.config.tune_pool_max));
    } else if (key == "tune_io_batch_max") {
      unsigned parsed = 0;
      const auto* begin = value.data();
      const auto* end = value.data() + value.size();
      const auto [ptr, ec] = std::from_chars(begin, end, parsed);
      if (ec != std::errc{} || ptr != end || parsed == 0) {
        return Error{EINVAL, "bad tune_io_batch_max: '" + std::string(value) + "'"};
      }
      out.config.tune_io_batch_max = parsed;
    } else if (key == "sample_ms" || key == "sample_ring" || key == "slow_pwrite_ms" ||
               key == "slow_capture_ms" || key == "slow_exemplars") {
      unsigned parsed = 0;
      const auto* begin = value.data();
      const auto* end = value.data() + value.size();
      const auto [ptr, ec] = std::from_chars(begin, end, parsed);
      if (ec != std::errc{} || ptr != end) {
        return Error{EINVAL, "bad value for option '" + std::string(key) + "': '" +
                                 std::string(value) + "'"};
      }
      if (key == "sample_ms") {
        out.config.sample_ms = parsed;
      } else if (key == "sample_ring") {
        out.config.sample_ring = parsed;
      } else if (key == "slow_capture_ms") {
        out.config.slow_capture_ms = parsed;
      } else if (key == "slow_exemplars") {
        out.config.slow_exemplars = parsed;
      } else {
        out.config.health.slow_pwrite_p99_ns =
            static_cast<std::uint64_t>(parsed) * 1'000'000;
      }
    } else if (key == "journal") {
      if (value.empty()) {
        return Error{EINVAL, "journal= needs a directory path"};
      }
      out.config.journal_dir = std::string(value);
    } else if (key == "journal_fsync_ms" || key == "slo_lag_ms" ||
               key == "slo_stall_pct" || key == "slo_ttfb_ms" ||
               key == "slo_short_s" || key == "slo_long_s") {
      unsigned parsed = 0;
      const auto* begin = value.data();
      const auto* end = value.data() + value.size();
      const auto [ptr, ec] = std::from_chars(begin, end, parsed);
      if (ec != std::errc{} || ptr != end) {
        return Error{EINVAL, "bad value for option '" + std::string(key) + "': '" +
                                 std::string(value) + "'"};
      }
      if (key == "journal_fsync_ms") {
        out.config.journal_fsync_ms = parsed;
      } else if (key == "slo_lag_ms") {
        out.config.slo_lag_ms = parsed;
      } else if (key == "slo_stall_pct") {
        out.config.slo_stall_pct = parsed;
      } else if (key == "slo_ttfb_ms") {
        out.config.slo_ttfb_ms = parsed;
      } else if (key == "slo_short_s") {
        out.config.slo_short_s = parsed;
      } else {
        out.config.slo_long_s = parsed;
      }
    } else if (key == "journal_segment") {
      CRFS_RETURN_IF_ERROR(need_size(out.config.journal_segment_bytes));
    } else if (key == "journal_max") {
      CRFS_RETURN_IF_ERROR(need_size(out.config.journal_max_bytes));
    } else if (key == "stage") {
      if (value.empty()) {
        return Error{EINVAL, "stage= needs 'mem' or a directory path"};
      }
      out.config.tier_stage = std::string(value);
    } else if (key == "remote") {
      if (value.empty()) {
        return Error{EINVAL, "remote= needs a directory path"};
      }
      out.config.tier_remote = std::string(value);
    } else if (key == "stage_cap") {
      CRFS_RETURN_IF_ERROR(need_size(out.config.stage_cap));
    } else if (key == "drain_mbps" || key == "drain_parallel") {
      unsigned parsed = 0;
      const auto* begin = value.data();
      const auto* end = value.data() + value.size();
      const auto [ptr, ec] = std::from_chars(begin, end, parsed);
      if (ec != std::errc{} || ptr != end) {
        return Error{EINVAL, "bad value for option '" + std::string(key) + "': '" +
                                 std::string(value) + "'"};
      }
      if (key == "drain_mbps") {
        out.config.drain_mbps = parsed;
      } else {
        out.config.drain_parallel = parsed;
      }
    } else if (key == "fsync_mode") {
      if (value != "stage" && value != "remote") {
        return Error{EINVAL,
                     "bad fsync_mode (want stage|remote): '" + std::string(value) + "'"};
      }
      out.config.fsync_mode = std::string(value);
    } else if (key == "big_writes") {
      out.fuse.big_writes = true;
    } else if (key == "no_big_writes") {
      out.fuse.big_writes = false;
    } else if (key == "flush_before_read") {
      out.config.flush_before_read = true;
    } else if (key == "paper_reads") {
      out.config.flush_before_read = false;
    } else if (key == "trace") {
      out.config.enable_tracing = true;
    } else if (key == "no_trace") {
      out.config.enable_tracing = false;
    } else {
      return Error{EINVAL, "unknown mount option: '" + std::string(key) + "'"};
    }
    if (comma == text.size()) break;
  }

  CRFS_RETURN_IF_ERROR(out.config.validate());
  return out;
}

namespace {

// Exact (re-parseable) size rendering: "4M", "512K", or raw bytes.
std::string exact_size(std::size_t bytes) {
  if (bytes != 0 && bytes % GiB == 0) return std::to_string(bytes / GiB) + "G";
  if (bytes != 0 && bytes % MiB == 0) return std::to_string(bytes / MiB) + "M";
  if (bytes != 0 && bytes % KiB == 0) return std::to_string(bytes / KiB) + "K";
  return std::to_string(bytes);
}

}  // namespace

std::string format_mount_options(const MountOptions& options) {
  std::string s = "chunk=" + exact_size(options.config.chunk_size) +
                  ",pool=" + exact_size(options.config.pool_size) +
                  ",threads=" + std::to_string(options.config.io_threads);
  if (options.config.pool_shards > 0) {
    s += ",pool_shards=" + std::to_string(options.config.pool_shards);
  }
  if (options.config.io_batch != Config{}.io_batch) {
    s += ",io_batch=" + std::to_string(options.config.io_batch);
  }
  if (options.config.io_engine == IoEngineKind::kUring) s += ",io_engine=uring";
  if (options.config.uring_depth != Config{}.uring_depth) {
    s += ",uring_depth=" + std::to_string(options.config.uring_depth);
  }
  if (!options.config.large_write_bypass) s += ",no_bypass";
  if (!options.config.readahead) s += ",no_readahead";
  if (options.config.readahead_window != Config{}.readahead_window) {
    s += ",readahead_window=" + std::to_string(options.config.readahead_window);
  }
  s += options.fuse.big_writes ? ",big_writes" : ",no_big_writes";
  if (!options.config.flush_before_read) s += ",paper_reads";
  if (options.config.enable_tracing) s += ",trace";
  if (options.config.sample_ms > 0) {
    s += ",sample_ms=" + std::to_string(options.config.sample_ms);
    if (options.config.sample_ring != Config{}.sample_ring) {
      s += ",sample_ring=" + std::to_string(options.config.sample_ring);
    }
  }
  if (options.config.health.slow_pwrite_p99_ns > 0) {
    s += ",slow_pwrite_ms=" +
         std::to_string(options.config.health.slow_pwrite_p99_ns / 1'000'000);
  }
  if (options.config.slow_capture_ms != Config{}.slow_capture_ms) {
    s += ",slow_capture_ms=" + std::to_string(options.config.slow_capture_ms);
  }
  if (options.config.slow_exemplars != Config{}.slow_exemplars) {
    s += ",slow_exemplars=" + std::to_string(options.config.slow_exemplars);
  }
  if (!options.config.epoch_tracking) s += ",no_epochs";
  if (options.config.epoch_gap_ms != Config{}.epoch_gap_ms) {
    s += ",epoch_gap_ms=" + std::to_string(options.config.epoch_gap_ms);
  }
  if (options.config.epoch_ledger != Config{}.epoch_ledger) {
    s += ",epoch_ledger=" + std::to_string(options.config.epoch_ledger);
  }
  if (!options.config.postmortem_path.empty()) {
    s += ",postmortem=" + options.config.postmortem_path;
    if (options.config.postmortem_refresh_ms != Config{}.postmortem_refresh_ms) {
      s += ",postmortem_refresh_ms=" + std::to_string(options.config.postmortem_refresh_ms);
    }
  }
  if (!options.config.journal_dir.empty()) {
    s += ",journal=" + options.config.journal_dir;
    if (options.config.journal_fsync_ms != Config{}.journal_fsync_ms) {
      s += ",journal_fsync_ms=" + std::to_string(options.config.journal_fsync_ms);
    }
    if (options.config.journal_segment_bytes != Config{}.journal_segment_bytes) {
      s += ",journal_segment=" + exact_size(options.config.journal_segment_bytes);
    }
    if (options.config.journal_max_bytes != Config{}.journal_max_bytes) {
      s += ",journal_max=" + exact_size(options.config.journal_max_bytes);
    }
  }
  if (options.config.slo_lag_ms != 0) {
    s += ",slo_lag_ms=" + std::to_string(options.config.slo_lag_ms);
  }
  if (options.config.slo_stall_pct != 0) {
    s += ",slo_stall_pct=" + std::to_string(options.config.slo_stall_pct);
  }
  if (options.config.slo_ttfb_ms != 0) {
    s += ",slo_ttfb_ms=" + std::to_string(options.config.slo_ttfb_ms);
  }
  if (options.config.slo_enabled()) {
    if (options.config.slo_short_s != Config{}.slo_short_s) {
      s += ",slo_short_s=" + std::to_string(options.config.slo_short_s);
    }
    if (options.config.slo_long_s != Config{}.slo_long_s) {
      s += ",slo_long_s=" + std::to_string(options.config.slo_long_s);
    }
  }
  if (!options.config.tier_stage.empty()) {
    s += ",stage=" + options.config.tier_stage;
    if (!options.config.tier_remote.empty()) {
      s += ",remote=" + options.config.tier_remote;
    }
    if (options.config.stage_cap != 0) {
      s += ",stage_cap=" + exact_size(options.config.stage_cap);
    }
    if (options.config.drain_mbps != 0) {
      s += ",drain_mbps=" + std::to_string(options.config.drain_mbps);
    }
    if (options.config.drain_parallel != Config{}.drain_parallel) {
      s += ",drain_parallel=" + std::to_string(options.config.drain_parallel);
    }
    if (options.config.fsync_mode != Config{}.fsync_mode) {
      s += ",fsync_mode=" + options.config.fsync_mode;
    }
  }
  if (options.config.controller) s += ",controller=on";
  if (options.config.tune_pool_max != 0) {
    s += ",tune_pool_max=" + exact_size(options.config.tune_pool_max);
  }
  if (options.config.tune_io_batch_max != Config{}.tune_io_batch_max) {
    s += ",tune_io_batch_max=" + std::to_string(options.config.tune_io_batch_max);
  }
  return s;
}

}  // namespace crfs
