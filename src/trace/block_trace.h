// BlockTrace: the blktrace analogue from paper §V-E / Fig 10.
//
// The DES disk model emits one record per block-layer request (time,
// starting sector offset, length). The analysis reproduces the paper's
// reading of Fig 10: native checkpointing shows "a high degree of
// randomness ... a lot of disk head seeks", CRFS shows "relatively
// sequential writes".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace crfs::trace {

/// One block-layer request as blktrace would log it.
struct BlockIo {
  double time = 0.0;            ///< seconds since trace start
  std::uint64_t offset = 0;     ///< byte offset on the device
  std::uint64_t length = 0;     ///< request length in bytes
};

/// Derived seek/sequentiality metrics for a trace.
struct BlockTraceSummary {
  std::uint64_t requests = 0;
  std::uint64_t bytes = 0;
  std::uint64_t seeks = 0;            ///< requests not contiguous with prior
  double seek_distance_bytes = 0.0;   ///< mean |gap| over seeking requests
  double sequential_fraction = 0.0;   ///< requests contiguous with predecessor
  double duration = 0.0;
};

class BlockTrace {
 public:
  void record(double time, std::uint64_t offset, std::uint64_t length) {
    ios_.push_back({time, offset, length});
  }

  const std::vector<BlockIo>& ios() const { return ios_; }
  bool empty() const { return ios_.empty(); }

  /// Computes seek statistics in arrival order.
  BlockTraceSummary summarize() const;

  /// Points (time, offset-in-MB) for the Fig 10 scatter rendering.
  std::vector<std::pair<double, double>> scatter_points() const;

 private:
  std::vector<BlockIo> ios_;
};

}  // namespace crfs::trace
