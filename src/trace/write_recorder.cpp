#include "trace/write_recorder.h"

#include <algorithm>

namespace crfs::trace {

std::uint64_t WriteRecorder::total_bytes() const {
  std::uint64_t n = 0;
  for (const auto& op : ops_) n += op.size;
  return n;
}

double WriteRecorder::total_write_seconds() const {
  double s = 0;
  for (const auto& op : ops_) s += op.duration;
  return s;
}

WriteSizeHistogram WriteRecorder::histogram() const {
  WriteSizeHistogram h;
  for (const auto& op : ops_) h.record(op.size, op.duration);
  return h;
}

std::vector<std::pair<double, double>> WriteRecorder::cumulative_time_by_size() const {
  // Fig 3 plots, for each process, cumulative write time as a function of
  // write size: ops are ordered by size, and the curve accumulates their
  // durations.
  std::vector<WriteOp> sorted = ops_;
  std::sort(sorted.begin(), sorted.end(),
            [](const WriteOp& a, const WriteOp& b) { return a.size < b.size; });
  std::vector<std::pair<double, double>> curve;
  curve.reserve(sorted.size());
  double cum = 0;
  for (const auto& op : sorted) {
    cum += op.duration;
    curve.emplace_back(static_cast<double>(op.size ? op.size : 1), cum);
  }
  return curve;
}

void WriteProfile::add(const WriteRecorder& recorder) {
  merged_.merge(recorder.histogram());
  per_process_.push_back(recorder);
}

std::vector<double> WriteProfile::completion_times() const {
  std::vector<double> times;
  times.reserve(per_process_.size());
  for (const auto& r : per_process_) times.push_back(r.total_write_seconds());
  return times;
}

double WriteProfile::completion_spread() const {
  const auto times = completion_times();
  if (times.empty()) return 1.0;
  const auto [lo, hi] = std::minmax_element(times.begin(), times.end());
  return *lo > 0 ? *hi / *lo : 1.0;
}

}  // namespace crfs::trace
