#include "trace/block_trace.h"

#include <cmath>

namespace crfs::trace {

BlockTraceSummary BlockTrace::summarize() const {
  BlockTraceSummary s;
  s.requests = ios_.size();
  if (ios_.empty()) return s;

  double seek_sum = 0.0;
  std::uint64_t head = ios_.front().offset;  // disk head position proxy
  bool first = true;
  for (const auto& io : ios_) {
    s.bytes += io.length;
    if (!first) {
      if (io.offset != head) {
        s.seeks += 1;
        seek_sum += std::abs(static_cast<double>(io.offset) - static_cast<double>(head));
      }
    }
    head = io.offset + io.length;
    first = false;
  }
  const std::uint64_t transitions = s.requests > 1 ? s.requests - 1 : 0;
  s.sequential_fraction =
      transitions == 0 ? 1.0
                       : static_cast<double>(transitions - s.seeks) / static_cast<double>(transitions);
  s.seek_distance_bytes = s.seeks > 0 ? seek_sum / static_cast<double>(s.seeks) : 0.0;
  s.duration = ios_.back().time - ios_.front().time;
  return s;
}

std::vector<std::pair<double, double>> BlockTrace::scatter_points() const {
  std::vector<std::pair<double, double>> pts;
  pts.reserve(ios_.size());
  for (const auto& io : ios_) {
    pts.emplace_back(io.time, static_cast<double>(io.offset) / (1024.0 * 1024.0));
  }
  return pts;
}

}  // namespace crfs::trace
