// WriteRecorder: the profiling instrumentation from paper §III.
//
// The authors "extended the BLCR library to record the information for
// all write operations, including number of writes, size of a write and
// time cost for each write" — this is that recorder. It feeds the
// Table I write-size profile and the per-process cumulative write-time
// curves of Figs 3 and 11.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/histogram.h"

namespace crfs::trace {

/// One recorded write operation.
struct WriteOp {
  std::uint64_t size = 0;    ///< bytes written
  double start = 0.0;        ///< seconds since process write-phase start
  double duration = 0.0;     ///< seconds spent inside write()
};

/// Per-process write log.
class WriteRecorder {
 public:
  explicit WriteRecorder(int process_id = 0) : process_id_(process_id) {}

  void record(std::uint64_t size, double start, double duration) {
    ops_.push_back({size, start, duration});
  }

  int process_id() const { return process_id_; }
  const std::vector<WriteOp>& ops() const { return ops_; }
  std::size_t count() const { return ops_.size(); }

  std::uint64_t total_bytes() const;
  double total_write_seconds() const;

  /// Table I profile for this process.
  WriteSizeHistogram histogram() const;

  /// The Fig 3 / Fig 11 curve: x = write size (the ops sorted by size),
  /// y = cumulative write time in seconds up to and including that size.
  std::vector<std::pair<double, double>> cumulative_time_by_size() const;

 private:
  int process_id_;
  std::vector<WriteOp> ops_;
};

/// Node- or job-level aggregation of per-process recorders.
class WriteProfile {
 public:
  void add(const WriteRecorder& recorder);

  /// Merged Table I histogram over all processes.
  const WriteSizeHistogram& histogram() const { return merged_; }

  std::size_t processes() const { return per_process_.size(); }
  const std::vector<WriteRecorder>& per_process() const { return per_process_; }

  /// Completion time (total write seconds) of each process; the spread of
  /// these values is the variance CRFS collapses (Fig 11).
  std::vector<double> completion_times() const;

  /// max/min completion ratio — the paper's "large variation ... ranging
  /// from 4 seconds to 8 seconds" is a ratio of ~2.
  double completion_spread() const;

 private:
  WriteSizeHistogram merged_;
  std::vector<WriteRecorder> per_process_;
};

}  // namespace crfs::trace
