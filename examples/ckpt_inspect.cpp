// ckpt_inspect: command-line inspector for checkpoint image files — the
// operational tool a CRFS deployment needs when a restart fails.
//
//   ./ckpt_inspect <image-file>      inspect + verify an existing image
//   ./ckpt_inspect --demo            generate an image and inspect it
//
// Prints the file header, context summary, a VMA table (address, length,
// protection, type), and verifies all payload CRCs.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "backend/posix_backend.h"
#include "blcr/checkpoint_writer.h"
#include "blcr/process_image.h"
#include "blcr/restart_reader.h"
#include "blcr/sinks.h"
#include "common/table.h"
#include "common/units.h"

using namespace crfs;

namespace {

std::string prot_string(std::uint32_t prot) {
  std::string s = "---";
  if (prot & 0x1) s[0] = 'r';
  if (prot & 0x2) s[1] = 'w';
  if (prot & 0x4) s[2] = 'x';
  // Our synthetic prot bits: 0x5 = r-x, 0x3 = rw-.
  if (prot == 0x5) return "r-x";
  if (prot == 0x3) return "rw-";
  return s;
}

int inspect(const std::filesystem::path& path) {
  auto backend = PosixBackend::create(path.parent_path().empty()
                                          ? "."
                                          : path.parent_path().string());
  if (!backend.ok()) {
    std::fprintf(stderr, "error: %s\n", backend.error().to_string().c_str());
    return 1;
  }
  auto bf = backend.value()->open_file(path.filename().string(),
                                       {.create = false, .truncate = false, .write = false});
  if (!bf.ok()) {
    std::fprintf(stderr, "error: %s\n", bf.error().to_string().c_str());
    return 1;
  }
  blcr::BackendSource source(*backend.value(), bf.value());
  auto image = blcr::RestartReader::read_image(source);
  (void)backend.value()->close_file(bf.value());
  if (!image.ok()) {
    std::fprintf(stderr, "INVALID checkpoint image: %s\n",
                 image.error().to_string().c_str());
    return 2;
  }

  const auto& img = image.value();
  std::printf("checkpoint image: %s\n", path.c_str());
  std::printf("  pid            : %u\n", img.pid);
  std::printf("  VMAs           : %u\n", img.vma_count);
  std::printf("  payload        : %s\n", format_bytes(img.image_bytes).c_str());
  std::printf("  payload CRC64  : %016llx (verified)\n\n",
              static_cast<unsigned long long>(img.payload_crc));

  TextTable table({"#", "start", "end", "prot", "type", "length"});
  char buf[3][32];
  for (std::size_t i = 0; i < img.vmas.size(); ++i) {
    const auto& v = img.vmas[i];
    std::snprintf(buf[0], sizeof(buf[0]), "%012llx",
                  static_cast<unsigned long long>(v.start));
    std::snprintf(buf[1], sizeof(buf[1]), "%012llx",
                  static_cast<unsigned long long>(v.start + v.length));
    std::snprintf(buf[2], sizeof(buf[2]), "%s", format_bytes(v.length).c_str());
    table.add_row({std::to_string(i), buf[0], buf[1], prot_string(v.prot),
                   blcr::vma_type_name(v.type), buf[2]});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}

int demo() {
  const auto dir = std::filesystem::temp_directory_path() / "crfs_inspect_demo";
  std::filesystem::create_directories(dir);
  const auto path = dir / "demo.ckpt";

  auto backend = PosixBackend::create(dir.string());
  if (!backend.ok()) return 1;
  auto bf = backend.value()->open_file("demo.ckpt",
                                       {.create = true, .truncate = true, .write = true});
  if (!bf.ok()) return 1;
  const auto image = blcr::ProcessImage::synthesize(4242, 6 * MiB, 1);
  blcr::BackendSink sink(*backend.value(), bf.value());
  auto crc = blcr::CheckpointWriter::write_image(image, sink);
  (void)backend.value()->close_file(bf.value());
  if (!crc.ok()) return 1;
  std::printf("generated demo image (%s)\n\n", path.c_str());
  return inspect(path);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <image-file> | --demo\n", argv[0]);
    return 64;
  }
  if (std::strcmp(argv[1], "--demo") == 0) return demo();
  return inspect(argv[1]);
}
