// parallel_logger: a generic (non-checkpoint) IO application on CRFS —
// the paper's claim that "any software component using standard
// filesystem interfaces can transparently benefit" from the aggregation.
//
// Simulates a parallel telemetry/log writer: N producer threads append
// many small records to per-thread log files, with periodic fsyncs, over
// a rate-limited backend. Runs the same workload natively and through
// CRFS and compares wall time and backend request counts.
//
//   ./parallel_logger [threads] [records-per-thread]
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "backend/mem_backend.h"
#include "backend/wrappers.h"
#include "common/table.h"
#include "common/units.h"
#include "common/wall_clock.h"
#include "crfs/crfs.h"
#include "crfs/file.h"
#include "crfs/fuse_shim.h"

using namespace crfs;

namespace {

std::string make_record(int thread, int i) {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "ts=%012d thread=%03d seq=%08d level=INFO msg=\"sensor frame "
                "committed\" checksum=%08x\n",
                i * 17, thread, i, static_cast<unsigned>(i * 2654435761u));
  return buf;
}

struct RunResult {
  double seconds = 0;
  std::uint64_t backend_writes = 0;
};

RunResult run_native(unsigned threads, int records) {
  auto mem = std::make_shared<MemBackend>();
  ThrottledBackend backend(mem, 120e6, std::chrono::microseconds(150));
  const Stopwatch sw;
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      auto f = backend.open_file("log" + std::to_string(t),
                                 {.create = true, .truncate = true, .write = true});
      if (!f.ok()) return;
      std::uint64_t off = 0;
      for (int i = 0; i < records; ++i) {
        const std::string rec = make_record(static_cast<int>(t), i);
        (void)backend.pwrite(f.value(), {reinterpret_cast<const std::byte*>(rec.data()),
                                         rec.size()}, off);
        off += rec.size();
        if (i % 500 == 499) (void)backend.fsync(f.value());
      }
      (void)backend.close_file(f.value());
    });
  }
  for (auto& w : workers) w.join();
  return {sw.elapsed_seconds(), mem->total_pwrites()};
}

RunResult run_crfs(unsigned threads, int records) {
  auto mem = std::make_shared<MemBackend>();
  auto throttled = std::make_shared<ThrottledBackend>(mem, 120e6,
                                                      std::chrono::microseconds(150));
  auto fs = Crfs::mount(throttled, Config{.chunk_size = 1 * MiB, .pool_size = 8 * MiB});
  if (!fs.ok()) return {};
  FuseShim shim(*fs.value(), FuseOptions{.big_writes = true});

  const Stopwatch sw;
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      auto file = File::open(shim, "log" + std::to_string(t),
                             {.create = true, .truncate = true, .write = true});
      if (!file.ok()) return;
      for (int i = 0; i < records; ++i) {
        const std::string rec = make_record(static_cast<int>(t), i);
        (void)file.value().write(rec.data(), rec.size());
        if (i % 500 == 499) (void)file.value().fsync();
      }
      (void)file.value().close();
    });
  }
  for (auto& w : workers) w.join();
  const double secs = sw.elapsed_seconds();
  return {secs, mem->total_pwrites()};
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned threads = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 4;
  const int records = argc > 2 ? std::atoi(argv[2]) : 4000;

  std::printf("parallel logger: %u threads x %d records (~100 B each), periodic "
              "fsync, backend 120 MB/s + 150 us/request\n\n",
              threads, records);

  const auto native = run_native(threads, records);
  const auto crfs = run_crfs(threads, records);

  TextTable table({"Path", "Wall time", "Backend requests"});
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f s", native.seconds);
  table.add_row({"native", buf, std::to_string(native.backend_writes)});
  std::snprintf(buf, sizeof(buf), "%.2f s", crfs.seconds);
  table.add_row({"CRFS", buf, std::to_string(crfs.backend_writes)});
  std::printf("%s\n", table.render().c_str());
  std::printf("speedup %.1fx with %.0fx fewer backend requests — aggregation helps\n"
              "any small-sequential-write workload, not just checkpoints.\n",
              native.seconds / crfs.seconds,
              static_cast<double>(native.backend_writes) /
                  static_cast<double>(crfs.backend_writes ? crfs.backend_writes : 1));
  return 0;
}
