// checkpoint_app: a coordinated multi-rank checkpoint, native vs CRFS,
// on real hardware — the paper's core experiment at laptop scale.
//
// Runs an MPI-style job (ranks as threads) through the three-phase
// blocking checkpoint protocol, writing BLCR-pattern images either
// directly to a rate-limited backend (standing in for a busy disk) or
// through CRFS stacked on the same backend, and reports per-rank times
// and the speedup.
//
//   ./checkpoint_app [ranks] [backend-MB/s] [image-MB]
//   (defaults: 4 ranks, 80 MB/s, 32 MB images)
//
// Timing note: wall-clock numbers on an oversubscribed/single-core host
// are noisy; the structural results (CRC equality, backend request
// reduction) are deterministic.
#include <cstdio>
#include <cstdlib>

#include "backend/mem_backend.h"
#include "backend/wrappers.h"
#include "common/table.h"
#include "common/units.h"
#include "mpi/job.h"
#include "mpi/targets.h"

using namespace crfs;

int main(int argc, char** argv) {
  const unsigned ranks = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 4;
  const double backend_mbps = argc > 2 ? std::atof(argv[2]) : 80.0;
  const std::uint64_t image_mb = argc > 3 ? static_cast<std::uint64_t>(std::atoi(argv[3])) : 32;

  mpi::JobConfig job;
  job.stack = mpi::Stack::kMvapich2;
  job.lu_class = mpi::LuClass::kB;
  job.nprocs = ranks;
  job.record_writes = true;
  job.image_bytes_override = image_mb * MiB;

  const auto image = job.image_bytes_override;
  std::printf("coordinated checkpoint: %u ranks x %s images, backend limited to "
              "%.0f MB/s\n\n",
              ranks, format_bytes(image).c_str(), backend_mbps);

  // The shared slow backend: an in-memory store behind a bandwidth cap
  // plus a 1 ms per-request cost, standing in for the contended disk of the
  // paper's compute nodes (every request pays positioning/journal cost —
  // which is exactly what aggregation amortises).
  auto make_backend = [&] {
    return std::make_shared<ThrottledBackend>(std::make_shared<MemBackend>(),
                                              backend_mbps * 1e6,
                                              std::chrono::microseconds(1000));
  };

  // --- native: every BLCR write goes straight to the backend -----------
  auto native_backend = make_backend();
  mpi::NativeTarget native_target(native_backend);
  const auto native = mpi::run_checkpoint(job, native_target);
  if (!native.ok) {
    std::fprintf(stderr, "native run failed: %s\n", native.error.c_str());
    return 1;
  }

  // --- CRFS: same backend, aggregation in between -----------------------
  auto crfs_backend = make_backend();
  auto fs = Crfs::mount(crfs_backend, Config{});
  if (!fs.ok()) return 1;
  FuseShim shim(*fs.value(), FuseOptions{.big_writes = true});
  mpi::CrfsTarget crfs_target(shim);
  const auto with_crfs = mpi::run_checkpoint(job, crfs_target);
  if (!with_crfs.ok) {
    std::fprintf(stderr, "CRFS run failed: %s\n", with_crfs.error.c_str());
    return 1;
  }

  // --- report ------------------------------------------------------------
  TextTable table({"Rank", "Native write (s)", "CRFS write (s)"});
  char buf[2][32];
  for (unsigned r = 0; r < ranks; ++r) {
    std::snprintf(buf[0], sizeof(buf[0]), "%.3f", native.ranks[r].write_seconds);
    std::snprintf(buf[1], sizeof(buf[1]), "%.3f", with_crfs.ranks[r].write_seconds);
    table.add_row({std::to_string(r), buf[0], buf[1]});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("checkpoint time (slowest rank): native %.3f s, CRFS %.3f s "
              "-> %.2fx speedup\n",
              native.checkpoint_seconds, with_crfs.checkpoint_seconds,
              native.checkpoint_seconds / with_crfs.checkpoint_seconds);
  std::printf("per-rank spread: native %.2fx, CRFS %.2fx\n", native.spread(),
              with_crfs.spread());

  // Data integrity across paths.
  bool identical = true;
  for (unsigned r = 0; r < ranks; ++r) {
    identical &= native.ranks[r].payload_crc == with_crfs.ranks[r].payload_crc;
  }
  std::printf("payload CRCs identical across both paths: %s\n",
              identical ? "yes" : "NO (bug!)");

  std::printf("\nwhy CRFS wins here: close() returns once all chunks hit the backend,\n"
              "but the %u ranks' small writes were batched into %s chunks, so the\n"
              "rate-limited backend served ~%llu large writes instead of ~%llu small "
              "ones.\n",
              ranks, format_bytes(fs.value()->config().chunk_size).c_str(),
              static_cast<unsigned long long>(fs.value()->backend_chunks_written()),
              static_cast<unsigned long long>(native.ranks[0].recorder.count() * ranks));
  return 0;
}
