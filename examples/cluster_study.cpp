// cluster_study: drive the DES from the command line to explore
// checkpoint behaviour beyond the paper's configurations — arbitrary
// node counts, processes per node, LU class, backend, and CRFS settings.
//
//   ./cluster_study [nodes] [ppn] [B|C|D] [ext3|lustre|nfs|pvfs2]
//
// Prints native vs CRFS checkpoint time, per-rank spread, and (ext3) the
// node disk-seek profile. Useful for what-if questions the paper's fixed
// testbed could not ask, e.g. "what does CRFS buy on 64 nodes x 16 ppn?"
#include <cstdio>
#include <cstring>
#include <cstdlib>

#include "common/table.h"
#include "common/units.h"
#include "sim/experiment.h"

using namespace crfs;

int main(int argc, char** argv) {
  sim::ExperimentConfig cfg;
  cfg.nodes = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 16;
  cfg.ppn = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 8;
  if (argc > 3) {
    switch (argv[3][0]) {
      case 'B': case 'b': cfg.lu_class = mpi::LuClass::kB; break;
      case 'C': case 'c': cfg.lu_class = mpi::LuClass::kC; break;
      default: cfg.lu_class = mpi::LuClass::kD; break;
    }
  } else {
    cfg.lu_class = mpi::LuClass::kC;
  }
  if (argc > 4) {
    if (std::strcmp(argv[4], "lustre") == 0) cfg.backend = sim::BackendKind::kLustre;
    else if (std::strcmp(argv[4], "nfs") == 0) cfg.backend = sim::BackendKind::kNfs;
    else if (std::strcmp(argv[4], "pvfs2") == 0) cfg.backend = sim::BackendKind::kPvfs2;
    else cfg.backend = sim::BackendKind::kExt3;
  }

  std::printf("cluster study: %s\n\n", cfg.describe().c_str());
  std::printf("per-process image: %s, total checkpoint: %s\n\n",
              format_bytes(mpi::image_bytes_per_process(cfg.stack, cfg.lu_class,
                                                        cfg.total_processes()))
                  .c_str(),
              format_bytes(mpi::total_checkpoint_bytes(cfg.stack, cfg.lu_class,
                                                       cfg.total_processes()))
                  .c_str());

  TextTable table({"Path", "Mean rank", "Slowest rank", "Spread", "Node-0 disk seeks"});
  char buf[4][32];
  for (const auto mode : {sim::FsMode::kNative, sim::FsMode::kCrfs}) {
    cfg.mode = mode;
    const auto r = sim::run_experiment(cfg);
    std::snprintf(buf[0], sizeof(buf[0]), "%.2f s", r.mean_rank_seconds);
    std::snprintf(buf[1], sizeof(buf[1]), "%.2f s", r.max_rank_seconds);
    std::snprintf(buf[2], sizeof(buf[2]), "%.2fx", r.spread());
    std::snprintf(buf[3], sizeof(buf[3]), "%llu",
                  static_cast<unsigned long long>(r.disk_summary.seeks));
    table.add_row({sim::mode_name(mode), buf[0], buf[1], buf[2],
                   cfg.backend == sim::BackendKind::kLustre ? "-" : buf[3]});
  }
  std::printf("%s\n", table.render().c_str());

  cfg.mode = sim::FsMode::kNative;
  const double native = sim::run_experiment(cfg).mean_rank_seconds;
  cfg.mode = sim::FsMode::kCrfs;
  const double crfs = sim::run_experiment(cfg).mean_rank_seconds;
  std::printf("CRFS speedup at this configuration: %.2fx\n", native / crfs);
  return 0;
}
