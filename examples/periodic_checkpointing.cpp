// periodic_checkpointing: the full production C/R lifecycle on CRFS —
// an application takes periodic coordinated checkpoints into managed
// epochs, "crashes" mid-epoch, recovers from the latest complete epoch,
// and prunes old storage.
//
//   ./periodic_checkpointing [ranks] [epochs]   (defaults: 4 ranks, 3 epochs)
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <thread>

#include "backend/posix_backend.h"
#include "blcr/checkpoint_set.h"
#include "blcr/checkpoint_writer.h"
#include "blcr/process_image.h"
#include "common/units.h"

using namespace crfs;

namespace {

// One coordinated checkpoint into a managed epoch: every rank writes its
// image concurrently; commit publishes atomically.
bool take_checkpoint(blcr::CheckpointSet& set, unsigned ranks, std::uint64_t seed,
                     bool crash_before_commit) {
  auto writer = set.begin_epoch(ranks);
  if (!writer.ok()) return false;

  std::vector<std::thread> threads;
  std::vector<bool> ok(ranks, false);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> meta(ranks);  // bytes, crc
  for (unsigned r = 0; r < ranks; ++r) {
    threads.emplace_back([&, r] {
      const auto image = blcr::ProcessImage::synthesize(r, 8 * MiB, seed + r);
      auto file = writer.value().open_rank(r);
      if (!file.ok()) return;
      blcr::CrfsFileSink sink(file.value());
      auto crc = blcr::CheckpointWriter::write_image(image, sink);
      if (!crc.ok() || !file.value().close().ok()) return;
      meta[r] = {image.content_bytes(), crc.value()};
      ok[r] = true;
    });
  }
  for (auto& t : threads) t.join();
  for (unsigned r = 0; r < ranks; ++r) {
    if (!ok[r]) return false;
    writer.value().record(r, meta[r].first, meta[r].second);
  }

  if (crash_before_commit) {
    std::printf("  epoch %u: simulated CRASH before commit (staging abandoned)\n",
                writer.value().epoch());
    // The EpochWriter destructor aborts -> staging removed; a hard crash
    // would leave a .tmp dir that prune() collects. Either way the epoch
    // never becomes visible.
    return false;
  }
  if (auto st = writer.value().commit(); !st.ok()) {
    std::fprintf(stderr, "  commit failed: %s\n", st.error().to_string().c_str());
    return false;
  }
  std::printf("  epoch %u committed (%u ranks)\n", writer.value().epoch(), ranks);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned ranks = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 4;
  const unsigned epochs = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 3;

  const auto dir = std::filesystem::temp_directory_path() / "crfs_periodic";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  auto backend = PosixBackend::create(dir.string());
  if (!backend.ok()) return 1;
  auto fs = Crfs::mount(std::move(backend.value()), Config{.chunk_size = 1 * MiB,
                                                           .pool_size = 8 * MiB});
  if (!fs.ok()) return 1;
  FuseShim shim(*fs.value(), FuseOptions{.big_writes = true});

  auto set = blcr::CheckpointSet::open(shim, "job42");
  if (!set.ok()) return 1;

  std::printf("periodic checkpointing of %u ranks into %s/job42\n\n", ranks, dir.c_str());

  // Regular epochs, with a crash injected into the last one.
  for (unsigned e = 0; e < epochs; ++e) {
    take_checkpoint(set.value(), ranks, 1000 + 100 * e, /*crash=*/false);
  }
  take_checkpoint(set.value(), ranks, 9999, /*crash=*/true);

  // --- recovery -----------------------------------------------------------
  auto latest = set.value().latest();
  if (!latest.ok() || !latest.value().has_value()) {
    std::fprintf(stderr, "no complete epoch found!\n");
    return 1;
  }
  std::printf("\nrecovery: latest complete epoch is %u\n", *latest.value());
  if (auto st = set.value().verify(*latest.value()); !st.ok()) {
    std::fprintf(stderr, "verification FAILED: %s\n", st.error().to_string().c_str());
    return 1;
  }
  std::printf("epoch %u verified: every rank image parses and matches its manifest "
              "CRC\n", *latest.value());

  auto info = set.value().inspect(*latest.value());
  for (const auto& rank : info.value().rank_files) {
    auto file = set.value().open_rank_for_restart(*latest.value(), rank.rank);
    blcr::CrfsFileSource source(file.value());
    auto restored = blcr::RestartReader::read_image(source);
    std::printf("  rank %u restored: %s payload, %u VMAs\n", rank.rank,
                format_bytes(restored.value().image_bytes).c_str(),
                restored.value().vma_count);
  }

  // --- retention -----------------------------------------------------------
  auto removed = set.value().prune(2);
  std::printf("\npruned %u old epoch(s); remaining:", removed.ok() ? removed.value() : 0);
  auto remaining = set.value().epochs();
  if (remaining.ok()) {
    for (unsigned e : remaining.value()) std::printf(" %u", e);
  }
  std::printf("\n");

  std::filesystem::remove_all(dir);
  return 0;
}
