// restart_verify: the full checkpoint/restart cycle.
//
// Checkpoints a set of synthetic processes through CRFS into a real
// directory, unmounts CRFS, then restarts every process image by reading
// the files DIRECTLY from the backing filesystem — demonstrating §V-F:
// "an application can be restarted directly from the back-end filesystem,
// without the need to mount CRFS" (CRFS never changes file layout).
//
//   ./restart_verify [ranks] [image-MB]     (defaults: 4 ranks, 16 MB)
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "backend/posix_backend.h"
#include "blcr/checkpoint_writer.h"
#include "blcr/process_image.h"
#include "blcr/restart_reader.h"
#include "blcr/sinks.h"
#include "common/units.h"
#include "common/wall_clock.h"
#include "crfs/file.h"
#include "crfs/fuse_shim.h"

using namespace crfs;

int main(int argc, char** argv) {
  const unsigned ranks = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 4;
  const std::uint64_t image_mb = argc > 2 ? static_cast<std::uint64_t>(std::atoi(argv[2])) : 16;

  const auto dir = std::filesystem::temp_directory_path() / "crfs_restart_verify";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  std::vector<std::uint64_t> crcs(ranks);

  // ---- checkpoint phase: through CRFS -----------------------------------
  {
    auto backend = PosixBackend::create(dir.string());
    if (!backend.ok()) return 1;
    auto fs = Crfs::mount(std::move(backend.value()), Config{});
    if (!fs.ok()) return 1;
    FuseShim shim(*fs.value(), FuseOptions{.big_writes = true});

    const Stopwatch sw;
    for (unsigned r = 0; r < ranks; ++r) {
      const auto image = blcr::ProcessImage::synthesize(r, image_mb * MiB, 2026);
      auto file = File::open(shim, "rank" + std::to_string(r) + ".ckpt",
                             {.create = true, .truncate = true, .write = true});
      if (!file.ok()) return 1;
      blcr::CrfsFileSink sink(file.value());
      auto crc = blcr::CheckpointWriter::write_image(image, sink);
      if (!crc.ok()) {
        std::fprintf(stderr, "checkpoint rank %u: %s\n", r, crc.error().to_string().c_str());
        return 1;
      }
      crcs[r] = crc.value();
      if (auto st = file.value().close(); !st.ok()) return 1;
    }
    std::printf("checkpointed %u ranks x %llu MB through CRFS in %.2f s\n", ranks,
                static_cast<unsigned long long>(image_mb), sw.elapsed_seconds());
  }  // CRFS unmounted here — destructor drained everything.

  // ---- restart phase: straight from the backing filesystem --------------
  auto backend = PosixBackend::create(dir.string());
  if (!backend.ok()) return 1;
  const Stopwatch sw;
  for (unsigned r = 0; r < ranks; ++r) {
    const std::string path = "rank" + std::to_string(r) + ".ckpt";
    auto bf = backend.value()->open_file(path, {.create = false, .truncate = false, .write = false});
    if (!bf.ok()) {
      std::fprintf(stderr, "open %s: %s\n", path.c_str(), bf.error().to_string().c_str());
      return 1;
    }
    blcr::BackendSource source(*backend.value(), bf.value());
    auto restored = blcr::RestartReader::read_image(source);
    (void)backend.value()->close_file(bf.value());
    if (!restored.ok()) {
      std::fprintf(stderr, "restart rank %u FAILED: %s\n", r,
                   restored.error().to_string().c_str());
      return 1;
    }
    if (restored.value().payload_crc != crcs[r]) {
      std::fprintf(stderr, "rank %u: CRC mismatch after restart!\n", r);
      return 1;
    }
    std::printf("rank %u restored: pid %u, %u VMAs, %s payload, CRC ok\n", r,
                restored.value().pid, restored.value().vma_count,
                format_bytes(restored.value().image_bytes).c_str());
  }
  std::printf("restarted %u ranks directly from %s (no CRFS mounted) in %.2f s\n",
              ranks, dir.c_str(), sw.elapsed_seconds());
  std::filesystem::remove_all(dir);
  return 0;
}
