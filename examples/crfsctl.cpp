// crfsctl: the CRFS deployment admin tool.
//
//   crfsctl options <mount-options>       parse + echo canonical options
//   crfsctl bench <dir> [mount-options]   aggregation throughput on a real
//                                         directory, CRFS vs direct
//   crfsctl stats <dir> [mount-options] [--json]
//                                         run an instrumented checkpoint
//                                         workload, print the per-stage
//                                         pipeline report (crfs::obs);
//                                         --json emits stats_json() instead
//   crfsctl trace <dir> <out.json> [mount-options] [--thread=N]
//                [--since-ms=N] [--file=substr]
//                                         same workload with span tracing;
//                                         writes a Chrome/Perfetto trace,
//                                         optionally filtered to one lane,
//                                         a trailing time window, or spans
//                                         tagged with a file substring
//   crfsctl slow <dir> [mount-options] [--json] [--inject-slow[=MBps]]
//                                         run the workload and print the
//                                         tail-latency forensic store:
//                                         slow-chunk exemplars with their
//                                         full causal chains (stage times,
//                                         queue depths, knob generation);
//                                         --inject-slow throttles the
//                                         backend so a fast disk still
//                                         produces exemplars
//   crfsctl watch <dir> [mount-options]   drive the workload with the live
//                                         sampler on; refresh a terminal
//                                         view of rates, occupancy, and
//                                         fired health events
//   crfsctl prom <dir> [mount-options]    run the workload, dump the final
//                                         snapshot in Prometheus text
//                                         exposition format (incl. the
//                                         crfs_epoch_* series)
//   crfsctl report <dir> [mount-options] [--json]
//                                         run two explicit checkpoint
//                                         epochs and print the epoch
//                                         ledger: bytes, durability lag,
//                                         aggregation ratio, effective
//                                         bandwidth per epoch
//   crfsctl postmortem <file>             pretty-print a flight-recorder
//                                         dump (Config::postmortem_path)
//   crfsctl knobs <dir> [mount-options] [--json]
//                                         mount and print the runtime knob
//                                         table: bounds, units, current
//                                         values, knob-plane generation
//   crfsctl tune <dir> <knob=value[,knob=value...]> [mount-options] [--json]
//                                         apply tunes through the
//                                         .crfs_tune control file and
//                                         print the resulting audited
//                                         decisions
//   crfsctl controller <dir> [mount-options] [--json]
//                                         run the workload with the
//                                         feedback controller enabled;
//                                         print the decision log
//   crfsctl timeline <dir> [--since=SEC] [--json]
//                                         read a mount's durable telemetry
//                                         journal (the directory itself or
//                                         a mount dir with .crfs/journal)
//                                         and print 1 s time buckets of
//                                         write rate, durability-lag p99,
//                                         and occupancy, with checkpoint
//                                         epochs overlaid — works after
//                                         the writing process is gone,
//                                         torn tails are reported, not
//                                         fatal
//   crfsctl slo <dir> [--json]            replay the journal's sample
//                                         frames through the SLO burn-rate
//                                         monitor (targets recovered from
//                                         the journal meta frame) and
//                                         print per-objective burn rates
//                                         and breaches
//   crfsctl epochs <dir> <set>            list a CheckpointSet's epochs
//   crfsctl verify <dir> <set> [epoch]    verify an epoch (default latest)
//
// Examples:
//   crfsctl bench /scratch "chunk=4M,pool=16M,threads=4"
//   crfsctl trace /scratch /tmp/epoch.json "chunk=1M,pool=4M"
//   crfsctl slow /scratch --inject-slow=32 --json
//   crfsctl verify /scratch job42
//
// Exit codes (stable, scripts may rely on them):
//   0   success
//   1   bad arguments / rejected tune tokens / workload failure
//   2   malformed document (stats, trace, postmortem failed to parse)
//   3   mount unreachable (backend create or Crfs::mount failed)
//   64  usage error (unknown command / missing operands)
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <thread>
#include <vector>

#include "backend/posix_backend.h"
#include "backend/tiered_backend.h"
#include "backend/wrappers.h"
#include "blcr/checkpoint_set.h"
#include "common/table.h"
#include "common/units.h"
#include "common/wall_clock.h"
#include "crfs/mount_options.h"
#include "crfs/posix_api.h"
#include "obs/chrome_trace.h"
#include "obs/controller.h"
#include "obs/epoch.h"
#include "obs/journal.h"
#include "obs/json_lite.h"
#include "obs/prom.h"
#include "obs/sampler.h"
#include "obs/slo.h"
#include "obs/slow_store.h"

using namespace crfs;

namespace {

// Stable exit codes (see the file header): 1 = bad arguments, 2 =
// malformed document, 3 = mount unreachable. Scripts branch on these.
constexpr int kExitBadArgs = 1;
constexpr int kExitMalformed = 2;
constexpr int kExitUnreachable = 3;

int usage() {
  std::fprintf(stderr,
               "usage: crfsctl options <mount-options>\n"
               "       crfsctl bench <dir> [mount-options]\n"
               "       crfsctl stats <dir> [mount-options] [--json]\n"
               "       crfsctl trace <dir> <out.json> [mount-options] "
               "[--thread=N] [--since-ms=N] [--file=substr]\n"
               "       crfsctl slow <dir> [mount-options] [--json] "
               "[--inject-slow[=MBps]]\n"
               "       crfsctl watch <dir> [mount-options]\n"
               "       crfsctl prom <dir> [mount-options]\n"
               "       crfsctl report <dir> [mount-options] [--json]\n"
               "       crfsctl postmortem <file>\n"
               "       crfsctl knobs <dir> [mount-options] [--json]\n"
               "       crfsctl tune <dir> <knob=value[,knob=value...]> "
               "[mount-options] [--json]\n"
               "       crfsctl controller <dir> [mount-options] [--json]\n"
               "       crfsctl timeline <dir> [--since=SEC] [--json]\n"
               "       crfsctl slo <dir> [--json]\n"
               "       crfsctl epochs <dir> <set>\n"
               "       crfsctl verify <dir> <set> [epoch]\n");
  return 64;
}

// The backend a crfsctl command mounts over `dir`: a plain PosixBackend,
// or — when the mount options name a staging tier (stage=/remote=) — a
// TieredBackend staging over `dir` and draining to the remote directory.
Result<std::shared_ptr<BackendFs>> make_ctl_backend(const std::string& dir,
                                                    const Config& cfg) {
  if (!cfg.tier_stage.empty()) {
    // remote= names the durable tier explicitly; without it the command's
    // <dir> argument is the remote and stage= is purely an accelerator.
    return make_tiered_backend(cfg, cfg.tier_remote.empty() ? dir : cfg.tier_remote);
  }
  auto backend = PosixBackend::create(dir);
  if (!backend.ok()) return backend.error();
  return std::shared_ptr<BackendFs>(std::move(backend).value());
}

// Pushes a checkpoint-shaped workload through a fresh CRFS mount on `dir`:
// 4 writer threads ("ranks"), one 16 MB image each, 64 KB records, fsync +
// close — enough traffic to populate every pipeline stage's histogram.
// Returns the still-mounted filesystem so the caller can report/export.
Result<std::unique_ptr<Crfs>> run_instrumented_workload(const std::string& dir,
                                                        const MountOptions& opts) {
  constexpr unsigned kRanks = 4;
  constexpr std::size_t kPerRank = 16 * MiB;
  constexpr std::size_t kRecord = 64 * KiB;

  auto backend = make_ctl_backend(dir, opts.config);
  if (!backend.ok()) return backend.error();
  auto fs = Crfs::mount(std::move(backend.value()), opts.config);
  if (!fs.ok()) return fs.error();

  {
    FuseShim shim(*fs.value(), opts.fuse);
    std::vector<std::thread> ranks;
    for (unsigned r = 0; r < kRanks; ++r) {
      ranks.emplace_back([&, r] {
        const std::string path = ".crfsctl_obs_rank" + std::to_string(r);
        std::vector<std::byte> record(kRecord, static_cast<std::byte>(r));
        auto h = shim.open(path, {.create = true, .truncate = true, .write = true});
        if (!h.ok()) return;
        for (std::size_t off = 0; off < kPerRank; off += kRecord) {
          (void)shim.write(h.value(), record, off);
        }
        (void)shim.fsync(h.value());
        (void)shim.close(h.value());
      });
    }
    for (auto& t : ranks) t.join();
  }
  for (unsigned r = 0; r < kRanks; ++r) {
    (void)fs.value()->unlink(".crfsctl_obs_rank" + std::to_string(r));
  }
  return fs;
}

int cmd_stats(int argc, char** argv) {
  if (argc < 3) return usage();
  bool as_json = false;
  const char* optstr = "";
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      as_json = true;
    } else {
      optstr = argv[i];
    }
  }
  auto opts = parse_mount_options(optstr);
  if (!opts.ok()) {
    std::fprintf(stderr, "error: %s\n", opts.error().to_string().c_str());
    return kExitBadArgs;
  }
  auto fs = run_instrumented_workload(argv[2], opts.value());
  if (!fs.ok()) {
    std::fprintf(stderr, "error: %s\n", fs.error().to_string().c_str());
    return kExitUnreachable;
  }
  if (as_json) {
    std::printf("%s\n", fs.value()->stats_json().c_str());
  } else {
    std::printf("%s", fs.value()->stats_report().c_str());
  }
  return 0;
}

int cmd_trace(int argc, char** argv) {
  if (argc < 4) return usage();
  const std::string out_path = argv[3];
  long long thread_filter = -1;
  double since_ms = -1.0;
  std::string file_filter;
  const char* optstr = "";
  for (int i = 4; i < argc; ++i) {
    if (std::strncmp(argv[i], "--thread=", 9) == 0) {
      thread_filter = std::atoll(argv[i] + 9);
    } else if (std::strncmp(argv[i], "--since-ms=", 11) == 0) {
      since_ms = std::atof(argv[i] + 11);
      if (since_ms <= 0) {
        std::fprintf(stderr, "error: bad --since-ms value: %s\n", argv[i]);
        return kExitBadArgs;
      }
    } else if (std::strncmp(argv[i], "--file=", 7) == 0) {
      file_filter = argv[i] + 7;
    } else {
      optstr = argv[i];
    }
  }
  auto opts = parse_mount_options(optstr);
  if (!opts.ok()) {
    std::fprintf(stderr, "error: %s\n", opts.error().to_string().c_str());
    return kExitBadArgs;
  }
  opts.value().config.enable_tracing = true;
  auto fs = run_instrumented_workload(argv[2], opts.value());
  if (!fs.ok()) {
    std::fprintf(stderr, "error: %s\n", fs.error().to_string().c_str());
    return kExitUnreachable;
  }
  auto events = fs.value()->trace().snapshot();
  // Filters narrow the exported document, not the capture: --thread keeps
  // one lane, --since-ms keeps the trailing window (relative to the last
  // span end — monotonic timestamps have no meaningful absolute origin),
  // --file keeps spans tagged with a path containing the substring.
  if (thread_filter >= 0 || since_ms > 0 || !file_filter.empty()) {
    std::uint64_t max_end = 0;
    for (const auto& e : events) max_end = std::max(max_end, e.ts_ns + e.dur_ns);
    const std::uint64_t window_ns = static_cast<std::uint64_t>(since_ms * 1e6);
    const std::uint64_t horizon =
        since_ms > 0 ? (max_end > window_ns ? max_end - window_ns : 0) : 0;
    std::erase_if(events, [&](const obs::TraceEvent& e) {
      if (thread_filter >= 0 && e.tid != static_cast<std::uint32_t>(thread_filter)) {
        return true;
      }
      if (since_ms > 0 && e.ts_ns + e.dur_ns < horizon) return true;
      if (!file_filter.empty() &&
          (e.tag == nullptr || std::strstr(e.tag, file_filter.c_str()) == nullptr)) {
        return true;
      }
      return false;
    });
  }
  const Status written = obs::write_chrome_trace(out_path, events);
  if (!written.ok()) {
    std::fprintf(stderr, "error: %s\n", written.error().to_string().c_str());
    return kExitBadArgs;
  }
  // Self-check: the exported document must parse back with a traceEvents
  // array — the same schema check the tests apply.
  std::string json;
  {
    std::FILE* f = std::fopen(out_path.c_str(), "r");
    if (f != nullptr) {
      char buf[65536];
      std::size_t n;
      while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) json.append(buf, n);
      std::fclose(f);
    }
  }
  auto parsed = obs::json::parse(json);
  if (!parsed.has_value() || parsed->get("traceEvents") == nullptr ||
      !parsed->get("traceEvents")->is_array()) {
    std::fprintf(stderr, "error: emitted trace failed schema self-check\n");
    return kExitMalformed;
  }
  std::printf("wrote %zu span events to %s (load in chrome://tracing or "
              "https://ui.perfetto.dev)\n%s",
              events.size(), out_path.c_str(), fs.value()->stats_report().c_str());
  return 0;
}

// `crfsctl slow`: run a small checkpoint workload and print the
// tail-latency forensic store — each exemplar is one slow chunk's full
// causal chain (trace id, the copy-in -> durable stamp chain, disjoint
// stage durations) plus the pipeline state it saw. On a fast local disk
// nothing crosses the default 1 s threshold, so --inject-slow wraps the
// backend in a ThrottledBackend (default 64 MB/s) and arms a 5 ms
// threshold — the supported way to demo the store and what the CLI test
// uses to guarantee an exemplar.
int cmd_slow(int argc, char** argv) {
  if (argc < 3) return usage();
  bool as_json = false;
  double inject_mbps = 0.0;
  const char* optstr = "";
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      as_json = true;
    } else if (std::strncmp(argv[i], "--inject-slow", 13) == 0) {
      inject_mbps = 64.0;
      if (argv[i][13] == '=') {
        inject_mbps = std::atof(argv[i] + 14);
      }
      if (argv[i][13] != '\0' && argv[i][13] != '=') {
        std::fprintf(stderr, "error: unknown flag %s\n", argv[i]);
        return kExitBadArgs;
      }
      if (inject_mbps <= 0) {
        std::fprintf(stderr, "error: bad --inject-slow value: %s\n", argv[i]);
        return kExitBadArgs;
      }
    } else {
      optstr = argv[i];
    }
  }
  auto opts = parse_mount_options(optstr);
  if (!opts.ok()) {
    std::fprintf(stderr, "error: %s\n", opts.error().to_string().c_str());
    return kExitBadArgs;
  }
  auto backend = PosixBackend::create(argv[2]);
  if (!backend.ok()) {
    std::fprintf(stderr, "error: %s\n", backend.error().to_string().c_str());
    return kExitUnreachable;
  }
  std::shared_ptr<BackendFs> shared = std::move(backend.value());
  if (inject_mbps > 0) {
    auto throttled =
        std::make_shared<ThrottledBackend>(std::move(shared), inject_mbps * 1e6);
    // Throttle the read-back scan too, so the demo captures both kinds of
    // exemplar (slow chunk writes AND slow restore reads).
    throttled->throttle_reads(true);
    shared = std::move(throttled);
    // Throttled transfers are tens of ms per chunk; arm a threshold that
    // catches them unless the caller chose one explicitly.
    if (opts.value().config.slow_capture_ms == Config{}.slow_capture_ms) {
      opts.value().config.slow_capture_ms = 5;
    }
  }
  auto fs = Crfs::mount(shared, opts.value().config);
  if (!fs.ok()) {
    std::fprintf(stderr, "error: %s\n", fs.error().to_string().c_str());
    return kExitUnreachable;
  }

  constexpr unsigned kRanks = 2;
  constexpr std::size_t kPerRank = 4 * MiB;
  constexpr std::size_t kRecord = 64 * KiB;
  {
    FuseShim shim(*fs.value(), opts.value().fuse);
    std::vector<std::thread> ranks;
    for (unsigned r = 0; r < kRanks; ++r) {
      ranks.emplace_back([&, r] {
        const std::string path = ".crfsctl_slow_rank" + std::to_string(r);
        std::vector<std::byte> record(kRecord, static_cast<std::byte>(r));
        auto h = shim.open(path, {.create = true, .truncate = true, .write = true});
        if (!h.ok()) return;
        for (std::size_t off = 0; off < kPerRank; off += kRecord) {
          (void)shim.write(h.value(), record, off);
        }
        (void)shim.fsync(h.value());
        (void)shim.close(h.value());
      });
    }
    for (auto& t : ranks) t.join();

    // Restore-shaped read-back of rank 0's image: a sequential scan whose
    // chunk-sized prefetch reads cross the same throttle, so the store
    // captures kind="read" exemplars beside the write chains.
    auto h = shim.open(".crfsctl_slow_rank0", {.write = false});
    if (h.ok()) {
      std::vector<std::byte> buf(kRecord);
      for (std::size_t off = 0; off < kPerRank; off += kRecord) {
        (void)shim.read(h.value(), buf, off);
      }
      (void)shim.close(h.value());
    }
  }
  for (unsigned r = 0; r < kRanks; ++r) {
    (void)fs.value()->unlink(".crfsctl_slow_rank" + std::to_string(r));
  }

  if (as_json) {
    std::printf("%s\n", fs.value()->slow_json().c_str());
    return 0;
  }
  const obs::SlowStore& store = fs.value()->slow_store();
  const auto exemplars = store.snapshot();
  std::printf("crfsctl slow: %u ranks x %s into %s (%s, engine=%s)\n", kRanks,
              format_bytes(kPerRank).c_str(), argv[2],
              format_mount_options(opts.value()).c_str(),
              fs.value()->active_io_engine());
  std::printf("threshold=%llu ms captured=%llu kept=%zu/%zu\n",
              static_cast<unsigned long long>(store.threshold_ns() / 1'000'000),
              static_cast<unsigned long long>(store.captured()), exemplars.size(),
              store.capacity());
  if (exemplars.empty()) {
    std::printf("no slow exemplars captured (nothing crossed the threshold; "
                "try --inject-slow or a lower slow_capture_ms)\n");
    return 0;
  }
  for (const auto& ex : exemplars) {
    std::printf(
        "SLOW trace_id=%llu kind=%s path=%s len=%llu total_ms=%.2f device_ms=%.2f\n",
        static_cast<unsigned long long>(ex.trace_id), ex.kind.c_str(), ex.path.c_str(),
        static_cast<unsigned long long>(ex.len),
        static_cast<double>(ex.total_lag_ns) / 1e6,
        static_cast<double>(ex.device_ns) / 1e6);
  }
  TextTable table({"Trace", "Kind", "Path", "Len", "Stall", "Fill", "Queue", "Submit",
                   "Device", "Total", "Qdepth", "Free", "Gen"});
  const auto ms = [](std::uint64_t ns) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f ms", static_cast<double>(ns) / 1e6);
    return std::string(buf);
  };
  for (const auto& ex : exemplars) {
    table.add_row({std::to_string(ex.trace_id), ex.kind, ex.path, format_bytes(ex.len),
                   ms(ex.pool_stall_ns), ms(ex.fill_ns), ms(ex.queue_ns),
                   ms(ex.submit_wait_ns), ms(ex.device_ns), ms(ex.total_lag_ns),
                   std::to_string(ex.queue_depth), std::to_string(ex.free_chunks),
                   std::to_string(ex.knob_generation)});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}

int cmd_prom(int argc, char** argv) {
  if (argc < 3) return usage();
  auto opts = parse_mount_options(argc >= 4 ? argv[3] : "");
  if (!opts.ok()) {
    std::fprintf(stderr, "error: %s\n", opts.error().to_string().c_str());
    return kExitBadArgs;
  }
  auto fs = run_instrumented_workload(argv[2], opts.value());
  if (!fs.ok()) {
    std::fprintf(stderr, "error: %s\n", fs.error().to_string().c_str());
    return kExitUnreachable;
  }
  // Finalize the auto epoch the workload opened so the crfs_epoch_*
  // series cover it too.
  (void)fs.value()->epoch_end();
  // Info-style series: the submission engine actually running after
  // feature detection/fallback, carried as a label (value is always 1).
  std::string engine_info =
      "# HELP crfs_io_engine_info Active IO engine after runtime detection\n"
      "# TYPE crfs_io_engine_info gauge\n"
      "crfs_io_engine_info{engine=\"" +
      obs::prometheus_label_value(fs.value()->active_io_engine()) + "\"} 1\n";
  std::printf("%s%s%s", engine_info.c_str(),
              obs::to_prometheus(fs.value()->metrics().snapshot()).c_str(),
              obs::epochs_to_prometheus(fs.value()->epochs()).c_str());
  return 0;
}

// `crfsctl report`: two explicit multi-file checkpoint epochs through a
// fresh mount, then the epoch ledger — the paper's per-checkpoint numbers
// (bytes, wall time, aggregation ratio, effective bandwidth) plus the
// ledger-derived durability lag. Greppable: one "EPOCH id=..." line per
// record; --json emits epochs_to_json() instead.
int cmd_report(int argc, char** argv) {
  if (argc < 3) return usage();
  bool as_json = false;
  const char* optstr = "";
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      as_json = true;
    } else {
      optstr = argv[i];
    }
  }
  auto opts = parse_mount_options(optstr);
  if (!opts.ok()) {
    std::fprintf(stderr, "error: %s\n", opts.error().to_string().c_str());
    return kExitBadArgs;
  }
  if (!opts.value().config.epoch_tracking) {
    std::fprintf(stderr, "error: crfsctl report needs epoch tracking (drop no_epochs)\n");
    return kExitBadArgs;
  }

  constexpr unsigned kEpochs = 2;
  constexpr unsigned kRanks = 4;
  constexpr std::size_t kPerRank = 8 * MiB;
  constexpr std::size_t kRecord = 64 * KiB;

  auto backend = make_ctl_backend(argv[2], opts.value().config);
  if (!backend.ok()) {
    std::fprintf(stderr, "error: %s\n", backend.error().to_string().c_str());
    return kExitUnreachable;
  }
  auto fs = Crfs::mount(std::move(backend.value()), opts.value().config);
  if (!fs.ok()) {
    std::fprintf(stderr, "error: %s\n", fs.error().to_string().c_str());
    return kExitUnreachable;
  }

  {
    FuseShim shim(*fs.value(), opts.value().fuse);
    for (unsigned e = 0; e < kEpochs; ++e) {
      (void)fs.value()->epoch_begin("ckpt-" + std::to_string(e));
      std::vector<std::thread> ranks;
      for (unsigned r = 0; r < kRanks; ++r) {
        ranks.emplace_back([&, e, r] {
          const std::string path = ".crfsctl_report_rank" + std::to_string(r) +
                                   ".ckpt." + std::to_string(e);
          std::vector<std::byte> record(kRecord, static_cast<std::byte>(r + e));
          auto h = shim.open(path, {.create = true, .truncate = true, .write = true});
          if (!h.ok()) return;
          for (std::size_t off = 0; off < kPerRank; off += kRecord) {
            (void)shim.write(h.value(), record, off);
          }
          (void)shim.close(h.value());
        });
      }
      for (auto& t : ranks) t.join();
      (void)fs.value()->epoch_end();
    }

    // Restore phase: scan the last checkpoint back, one sequential reader
    // per rank image — each scan becomes a finalized restore-ledger row.
    {
      std::vector<std::thread> ranks;
      for (unsigned r = 0; r < kRanks; ++r) {
        ranks.emplace_back([&, r] {
          const std::string path = ".crfsctl_report_rank" + std::to_string(r) +
                                   ".ckpt." + std::to_string(kEpochs - 1);
          std::vector<std::byte> buf(kRecord);
          auto h = shim.open(path, {.write = false});
          if (!h.ok()) return;
          for (std::size_t off = 0; off < kPerRank; off += kRecord) {
            (void)shim.read(h.value(), buf, off);
          }
          (void)shim.close(h.value());
        });
      }
      for (auto& t : ranks) t.join();
    }
  }
  // Over a tiered backend, wait for the background drain to finish BEFORE
  // unlinking the images — eviction only happens once an epoch is
  // remote-durable, and the ledger's drained_bytes/drain_bw columns
  // should reflect the whole run.
  if (fs.value()->tiered_backend() != nullptr) {
    (void)fs.value()->tiered_backend()->flush();
  }
  for (unsigned e = 0; e < kEpochs; ++e) {
    for (unsigned r = 0; r < kRanks; ++r) {
      (void)fs.value()->unlink(".crfsctl_report_rank" + std::to_string(r) + ".ckpt." +
                               std::to_string(e));
    }
  }

  const auto records = fs.value()->epochs();
  if (as_json) {
    std::printf("%s\n", obs::epochs_to_json(records).c_str());
    return 0;
  }
  std::printf("crfsctl report: %u epochs x %u ranks x %s into %s (%s, engine=%s)\n",
              kEpochs, kRanks, format_bytes(kPerRank).c_str(), argv[2],
              format_mount_options(opts.value()).c_str(),
              fs.value()->active_io_engine());
  TextTable table({"Epoch", "Label", "Files", "Bytes", "Chunks", "Agg ratio",
                   "Eff BW", "Lag mean", "Lag max", "Drained", "Drain BW"});
  for (const auto& rec : records) {
    std::printf("EPOCH id=%llu label=%s files=%llu bytes=%llu chunks=%llu "
                "durable=%llu backend_writes=%llu drained=%llu drain_ns=%llu\n",
                static_cast<unsigned long long>(rec.id), rec.label.c_str(),
                static_cast<unsigned long long>(rec.files),
                static_cast<unsigned long long>(rec.bytes),
                static_cast<unsigned long long>(rec.chunks),
                static_cast<unsigned long long>(rec.durable_bytes),
                static_cast<unsigned long long>(rec.backend_writes),
                static_cast<unsigned long long>(rec.drained_bytes),
                static_cast<unsigned long long>(rec.drain_ns));
    char agg[32], bw[32], lmean[32], lmax[32], dbw[32];
    std::snprintf(agg, sizeof(agg), "%.2f", rec.aggregation_ratio());
    std::snprintf(bw, sizeof(bw), "%.0f MB/s", rec.effective_bw() / 1e6);
    std::snprintf(lmean, sizeof(lmean), "%.2f ms", rec.mean_durability_lag_ns() / 1e6);
    std::snprintf(lmax, sizeof(lmax), "%.2f ms",
                  static_cast<double>(rec.durability_lag_max_ns) / 1e6);
    std::snprintf(dbw, sizeof(dbw), "%.0f MB/s", rec.drain_bw() / 1e6);
    table.add_row({std::to_string(rec.id), rec.label, std::to_string(rec.files),
                   format_bytes(rec.bytes), std::to_string(rec.chunks), agg, bw,
                   lmean, lmax, format_bytes(rec.drained_bytes),
                   rec.drained_bytes > 0 ? dbw : "-"});
  }
  std::printf("%s", table.render().c_str());
  if (fs.value()->tiered_backend() != nullptr) {
    // Greppable tier line + occupancy snapshot: the drain-lag view an
    // operator checks after a burst (stage should empty at remote speed).
    std::printf("TIER %s\n", fs.value()->tier_json().c_str());
  }

  // Critical-path attribution: where the epoch's chunks spent their
  // lifetime, summed over chunks (so concurrent stages can exceed wall
  // time on multi-thread pipelines). Copy/stall come from the app side,
  // queue/submit/device from the IO side; barrier is the close()/fsync()
  // drain wait, which overlaps the background stages and is reported
  // beside the decomposition, not summed into it.
  std::printf("critical path (per-epoch stage times, summed over chunks):\n");
  TextTable stages({"Epoch", "Wall", "Copy", "Pool stall", "Queue", "Submit",
                    "Device", "Barrier"});
  const auto ms = [](std::uint64_t ns) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f ms", static_cast<double>(ns) / 1e6);
    return std::string(buf);
  };
  for (const auto& rec : records) {
    std::printf("STAGES id=%llu copy_ns=%llu pool_stall_ns=%llu queue_ns=%llu "
                "submit_wait_ns=%llu device_ns=%llu barrier_ns=%llu\n",
                static_cast<unsigned long long>(rec.id),
                static_cast<unsigned long long>(rec.copy_ns),
                static_cast<unsigned long long>(rec.pool_stall_ns),
                static_cast<unsigned long long>(rec.queue_residency_ns),
                static_cast<unsigned long long>(rec.submit_wait_ns),
                static_cast<unsigned long long>(rec.device_ns),
                static_cast<unsigned long long>(rec.barrier_ns));
    char wall[32];
    std::snprintf(wall, sizeof(wall), "%.2f ms", rec.wall_seconds() * 1e3);
    stages.add_row({std::to_string(rec.id), wall, ms(rec.copy_ns),
                    ms(rec.pool_stall_ns), ms(rec.queue_residency_ns),
                    ms(rec.submit_wait_ns), ms(rec.device_ns), ms(rec.barrier_ns)});
  }
  std::printf("%s", stages.render().c_str());

  // Per-restore attribution: the read-side mirror of the epoch ledger —
  // one row per sequential scan, greppable as RESTORE lines.
  const auto restores = fs.value()->restore_ledger();
  if (!restores.empty()) {
    std::printf("restores (read_engine=%s):\n", fs.value()->active_read_engine());
    TextTable rt({"Path", "Bytes", "Ops", "Issued", "Hits", "Wasted", "Sync", "TTFB"});
    for (const auto& r : restores) {
      std::printf("RESTORE path=%s bytes=%llu ops=%llu prefetch_issued=%llu "
                  "prefetch_hits=%llu prefetch_wasted=%llu sync_preads=%llu "
                  "ttfb_ns=%llu\n",
                  r.path.c_str(), static_cast<unsigned long long>(r.bytes),
                  static_cast<unsigned long long>(r.ops),
                  static_cast<unsigned long long>(r.prefetch_issued),
                  static_cast<unsigned long long>(r.prefetch_hits),
                  static_cast<unsigned long long>(r.prefetch_wasted),
                  static_cast<unsigned long long>(r.sync_preads),
                  static_cast<unsigned long long>(r.ttfb_ns));
      rt.add_row({r.path, format_bytes(r.bytes), std::to_string(r.ops),
                  std::to_string(r.prefetch_issued), std::to_string(r.prefetch_hits),
                  std::to_string(r.prefetch_wasted), std::to_string(r.sync_preads),
                  ms(r.ttfb_ns)});
    }
    std::printf("%s", rt.render().c_str());
  }
  return 0;
}

// `crfsctl postmortem`: parse + pretty-print a flight-recorder dump. Exit
// 2 when the file is missing or fails to parse (a truncated dump means
// the publish protocol broke — worth a loud failure).
int cmd_postmortem(int argc, char** argv) {
  if (argc < 3) return usage();
  std::string text;
  {
    std::FILE* f = std::fopen(argv[2], "r");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot open %s\n", argv[2]);
      return kExitMalformed;
    }
    char buf[65536];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
    std::fclose(f);
  }
  auto doc = obs::json::parse(text);
  if (!doc.has_value() || !doc->is_object() || doc->get("crfs_postmortem") == nullptr) {
    std::fprintf(stderr, "error: %s is not a CRFS postmortem document\n", argv[2]);
    return kExitMalformed;
  }

  const auto num = [&](const obs::json::Value* v) -> double {
    return v != nullptr && v->is_number() ? v->number : 0.0;
  };
  std::printf("CRFS postmortem %s\n", argv[2]);
  if (const auto* cfg = doc->get("config"); cfg != nullptr && cfg->is_string()) {
    std::printf("  config: %s\n", cfg->string.c_str());
  }
  std::printf("  rendered_ns: %.0f\n", num(doc->get("rendered_ns")));
  if (const auto* mount = doc->get("mount"); mount != nullptr && mount->is_object()) {
    std::printf("  mount: app_writes=%.0f app_bytes=%.0f full_flushes=%.0f "
                "partial_flushes=%.0f\n",
                num(mount->get("app_writes")), num(mount->get("app_bytes")),
                num(mount->get("full_flushes")), num(mount->get("partial_flushes")));
  }

  const auto* open = doc->get("epoch_open");
  if (open != nullptr && open->is_object()) {
    const auto* label = open->get("label");
    std::printf("  OPEN EPOCH id=%.0f label=%s bytes=%.0f durable=%.0f chunks=%.0f\n",
                num(open->get("id")),
                label != nullptr && label->is_string() ? label->string.c_str() : "?",
                num(open->get("bytes")), num(open->get("durable_bytes")),
                num(open->get("chunks")));
  } else {
    std::printf("  no epoch open at dump time\n");
  }
  if (const auto* eps = doc->get("epochs"); eps != nullptr && eps->is_array()) {
    std::printf("  finished epochs: %zu (epochs_completed=%.0f)\n", eps->array->size(),
                num(doc->get("epochs_completed")));
    for (const auto& e : *eps->array) {
      const auto* label = e.get("label");
      std::printf("    EPOCH id=%.0f label=%s bytes=%.0f durable=%.0f\n",
                  num(e.get("id")),
                  label != nullptr && label->is_string() ? label->string.c_str() : "?",
                  num(e.get("bytes")), num(e.get("durable_bytes")));
    }
  }
  if (const auto* events = doc->get("events"); events != nullptr && events->is_array()) {
    std::printf("  events: %zu\n", events->array->size());
    for (const auto& e : *events->array) {
      const auto* rule = e.get("rule");
      const auto* msg = e.get("message");
      std::printf("    EVENT %s: %s\n",
                  rule != nullptr && rule->is_string() ? rule->string.c_str() : "?",
                  msg != nullptr && msg->is_string() ? msg->string.c_str() : "");
    }
  }
  if (const auto* slow = doc->get("slow"); slow != nullptr && slow->is_object()) {
    const auto* ex = slow->get("exemplars");
    std::printf("  slow exemplars: %zu (threshold_ms=%.0f captured=%.0f)\n",
                ex != nullptr && ex->is_array() ? ex->array->size() : 0,
                num(slow->get("threshold_ms")), num(slow->get("captured")));
    if (ex != nullptr && ex->is_array()) {
      for (const auto& s : *ex->array) {
        const auto* path = s.get("path");
        std::printf("    SLOW trace_id=%.0f path=%s total_ms=%.2f device_ms=%.2f\n",
                    num(s.get("trace_id")),
                    path != nullptr && path->is_string() ? path->string.c_str() : "?",
                    num(s.get("total_lag_ns")) / 1e6, num(s.get("device_ns")) / 1e6);
      }
    }
  }
  if (const auto* tail = doc->get("trace_tail"); tail != nullptr && tail->is_array()) {
    std::printf("  trace tail: %zu spans\n", tail->array->size());
    for (const auto& s : *tail->array) {
      const auto* name = s.get("name");
      std::printf("    SPAN %s ts=%.0f dur=%.0f\n",
                  name != nullptr && name->is_string() ? name->string.c_str() : "?",
                  num(s.get("ts_ns")), num(s.get("dur_ns")));
    }
  }
  return 0;
}

// Journal-directory operand shared by `timeline` and `slo`: accepts the
// journal directory itself or a mount directory holding the conventional
// .crfs/journal subdirectory (the journal= layout the docs recommend).
std::string resolve_journal_dir(const char* operand) {
  std::error_code ec;
  const std::filesystem::path nested =
      std::filesystem::path(operand) / ".crfs" / "journal";
  if (std::filesystem::is_directory(nested, ec)) return nested.string();
  return operand;
}

double jnum(const obs::json::Value* obj, const char* key) {
  if (obj == nullptr) return 0.0;
  const auto* v = obj->get(key);
  return v != nullptr && v->is_number() ? v->number : 0.0;
}

// `crfsctl timeline`: offline reconstruction of a mount's telemetry from
// the durable journal — the tool you reach for after the writer was
// SIGKILLed. Sample frames carry cumulative totals, so per-bucket rates
// are consecutive-frame deltas; a torn tail (normal after a kill) costs
// at most the one partial frame the CRC rejected.
int cmd_timeline(int argc, char** argv) {
  if (argc < 3) return usage();
  bool as_json = false;
  double since_s = -1.0;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      as_json = true;
    } else if (std::strncmp(argv[i], "--since=", 8) == 0) {
      since_s = std::atof(argv[i] + 8);
      if (since_s < 0) {
        std::fprintf(stderr, "error: bad --since value: %s\n", argv[i]);
        return kExitBadArgs;
      }
    } else {
      std::fprintf(stderr, "error: unknown flag %s\n", argv[i]);
      return kExitBadArgs;
    }
  }
  const std::string dir = resolve_journal_dir(argv[2]);
  const auto res = obs::JournalReader::read_dir(dir);
  if (!res.ok) {
    std::fprintf(stderr, "error: %s\n", res.error.c_str());
    return kExitMalformed;
  }

  struct Point {
    std::uint64_t ts_ns = 0, pwrite_bytes = 0, pwrites = 0;
    std::uint64_t lag_p99_ns = 0, lag_n = 0;
    long long queue_depth = 0, free_chunks = 0;
  };
  struct EpochRow {
    std::uint64_t id = 0, start_ns = 0, end_ns = 0, bytes = 0;
    std::string label;
  };
  std::vector<Point> pts;
  std::vector<EpochRow> epochs;
  std::size_t events = 0, slow = 0;
  for (const auto& rec : res.records) {
    const auto doc = obs::json::parse(rec.payload);
    if (!doc.has_value() || !doc->is_object()) continue;
    if (rec.type == obs::FrameType::kSample) {
      Point p;
      p.ts_ns = static_cast<std::uint64_t>(jnum(&*doc, "ts_ns"));
      p.pwrite_bytes = static_cast<std::uint64_t>(jnum(&*doc, "pwrite_bytes"));
      p.pwrites = static_cast<std::uint64_t>(jnum(&*doc, "pwrites"));
      p.lag_p99_ns = static_cast<std::uint64_t>(jnum(&*doc, "lag_p99_ns"));
      p.lag_n = static_cast<std::uint64_t>(jnum(&*doc, "lag_n"));
      p.queue_depth = static_cast<long long>(jnum(&*doc, "queue_depth"));
      p.free_chunks = static_cast<long long>(jnum(&*doc, "free_chunks"));
      pts.push_back(p);
    } else if (rec.type == obs::FrameType::kEpoch) {
      EpochRow e;
      e.id = static_cast<std::uint64_t>(jnum(&*doc, "id"));
      e.start_ns = static_cast<std::uint64_t>(jnum(&*doc, "start_ns"));
      e.end_ns = static_cast<std::uint64_t>(jnum(&*doc, "end_ns"));
      e.bytes = static_cast<std::uint64_t>(jnum(&*doc, "bytes"));
      const auto* label = doc->get("label");
      if (label != nullptr && label->is_string()) e.label = label->string;
      epochs.push_back(e);
    } else if (rec.type == obs::FrameType::kEvent) {
      ++events;
    } else if (rec.type == obs::FrameType::kSlow) {
      ++slow;
    }
  }

  // 1 s buckets on the journal's own clock, origin = first sample frame.
  // Rates are deltas between consecutive frames, attributed to the bucket
  // of the later frame; the lag column keeps the worst p99 in the bucket.
  const std::uint64_t t0 = pts.empty() ? 0 : pts.front().ts_ns;
  struct Bucket {
    std::uint64_t pwrite_bytes = 0, pwrites = 0, lag_p99_ns = 0, samples = 0;
    long long queue_depth = 0, free_chunks = 0;
  };
  std::map<std::uint64_t, Bucket> buckets;
  for (std::size_t i = 1; i < pts.size(); ++i) {
    const std::uint64_t sec = (pts[i].ts_ns - t0) / 1'000'000'000;
    Bucket& b = buckets[sec];
    b.pwrite_bytes += pts[i].pwrite_bytes - pts[i - 1].pwrite_bytes;
    b.pwrites += pts[i].pwrites - pts[i - 1].pwrites;
    if (pts[i].lag_n > 0) b.lag_p99_ns = std::max(b.lag_p99_ns, pts[i].lag_p99_ns);
    b.queue_depth = pts[i].queue_depth;
    b.free_chunks = pts[i].free_chunks;
    b.samples += 1;
  }
  if (since_s >= 0) {
    std::erase_if(buckets, [&](const auto& kv) {
      return static_cast<double>(kv.first) < since_s;
    });
  }

  if (as_json) {
    std::string out = "{\"crfs_timeline\":1";
    out += ",\"journal_dir\":\"" + dir + "\"";
    out += ",\"segments\":" + std::to_string(res.segments);
    out += ",\"records\":" + std::to_string(res.records.size());
    out += ",\"samples\":" + std::to_string(pts.size());
    out += ",\"torn_tail\":" + std::string(res.torn_tail ? "true" : "false");
    out += ",\"torn_bytes\":" + std::to_string(res.torn_bytes);
    out += ",\"t0_ns\":" + std::to_string(t0);
    out += ",\"bucket_s\":1,\"buckets\":[";
    bool first = true;
    for (const auto& [sec, b] : buckets) {
      if (!first) out += ",";
      first = false;
      out += "{\"t_s\":" + std::to_string(sec);
      out += ",\"pwrite_bytes\":" + std::to_string(b.pwrite_bytes);
      out += ",\"pwrites\":" + std::to_string(b.pwrites);
      out += ",\"lag_p99_ns\":" + std::to_string(b.lag_p99_ns);
      out += ",\"queue_depth\":" + std::to_string(b.queue_depth);
      out += ",\"free_chunks\":" + std::to_string(b.free_chunks);
      out += ",\"samples\":" + std::to_string(b.samples) + "}";
    }
    out += "],\"epochs\":[";
    first = true;
    for (const auto& e : epochs) {
      if (!first) out += ",";
      first = false;
      out += "{\"id\":" + std::to_string(e.id);
      out += ",\"label\":\"" + e.label + "\"";
      out += ",\"start_ns\":" + std::to_string(e.start_ns);
      out += ",\"end_ns\":" + std::to_string(e.end_ns);
      out += ",\"bytes\":" + std::to_string(e.bytes) + "}";
    }
    out += "],\"events\":" + std::to_string(events);
    out += ",\"slow\":" + std::to_string(slow);
    out += ",\"meta\":";
    out += res.meta_json.empty() ? std::string("null") : res.meta_json;
    out += "}";
    std::printf("%s\n", out.c_str());
    return 0;
  }

  std::printf("crfsctl timeline: %s (%zu segments, %zu records, %zu samples%s)\n",
              dir.c_str(), res.segments, res.records.size(), pts.size(),
              res.torn_tail ? ", TORN TAIL" : "");
  if (res.torn_tail) {
    std::printf("torn tail: %llu bytes abandoned at a CRC-rejected partial frame "
                "(normal after SIGKILL; every prior record was recovered)\n",
                static_cast<unsigned long long>(res.torn_bytes));
  }
  TextTable table({"T", "IO", "Pwrites", "Lag p99", "Queue", "Free"});
  for (const auto& [sec, b] : buckets) {
    char io[32], lag[32];
    std::snprintf(io, sizeof(io), "%.1f MB/s", static_cast<double>(b.pwrite_bytes) / 1e6);
    std::snprintf(lag, sizeof(lag), "%.2f ms", static_cast<double>(b.lag_p99_ns) / 1e6);
    std::printf("BUCKET t=%llus pwrite_bytes=%llu pwrites=%llu lag_p99_ns=%llu "
                "queue=%lld free=%lld\n",
                static_cast<unsigned long long>(sec),
                static_cast<unsigned long long>(b.pwrite_bytes),
                static_cast<unsigned long long>(b.pwrites),
                static_cast<unsigned long long>(b.lag_p99_ns), b.queue_depth,
                b.free_chunks);
    table.add_row({std::to_string(sec) + "s", io, std::to_string(b.pwrites), lag,
                   std::to_string(b.queue_depth), std::to_string(b.free_chunks)});
  }
  std::printf("%s", table.render().c_str());
  for (const auto& e : epochs) {
    std::printf("EPOCH id=%llu label=%s start=%.2fs end=%.2fs bytes=%llu\n",
                static_cast<unsigned long long>(e.id), e.label.c_str(),
                e.start_ns >= t0 ? static_cast<double>(e.start_ns - t0) / 1e9 : 0.0,
                e.end_ns >= t0 ? static_cast<double>(e.end_ns - t0) / 1e9 : 0.0,
                static_cast<unsigned long long>(e.bytes));
  }
  std::printf("events=%zu slow_exemplars=%zu\n", events, slow);
  return 0;
}

// `crfsctl slo`: offline burn-rate replay. The meta frame at the head of
// every segment carries the mount's SLO targets; sample frames carry the
// already-windowed inputs the live monitor consumed, so replaying them
// through a fresh SloMonitor reproduces the burn rates and breach edges
// the dead process saw.
int cmd_slo(int argc, char** argv) {
  if (argc < 3) return usage();
  bool as_json = false;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      as_json = true;
    } else {
      std::fprintf(stderr, "error: unknown flag %s\n", argv[i]);
      return kExitBadArgs;
    }
  }
  const std::string dir = resolve_journal_dir(argv[2]);
  const auto res = obs::JournalReader::read_dir(dir);
  if (!res.ok) {
    std::fprintf(stderr, "error: %s\n", res.error.c_str());
    return kExitMalformed;
  }
  const auto meta = obs::json::parse(res.meta_json);
  const obs::json::Value* slo_cfg =
      meta.has_value() && meta->is_object() ? meta->get("slo") : nullptr;
  if (slo_cfg == nullptr || !slo_cfg->is_object()) {
    if (as_json) {
      std::printf("{\"enabled\":false}\n");
    } else {
      std::printf("no SLO targets in journal meta (mount with slo_lag_ms/"
                  "slo_stall_pct/slo_ttfb_ms to arm the monitor)\n");
    }
    return 0;
  }
  obs::SloConfig cfg;
  cfg.lag_p99_ns = static_cast<std::uint64_t>(jnum(slo_cfg, "lag_p99_ns"));
  cfg.stall_ratio = jnum(slo_cfg, "stall_ratio_ppm") / 1e6;
  cfg.ttfb_p99_ns = static_cast<std::uint64_t>(jnum(slo_cfg, "ttfb_p99_ns"));
  cfg.short_window_ns =
      static_cast<std::uint64_t>(jnum(slo_cfg, "short_window_s")) * 1'000'000'000;
  cfg.long_window_ns =
      static_cast<std::uint64_t>(jnum(slo_cfg, "long_window_s")) * 1'000'000'000;
  cfg.budget = jnum(slo_cfg, "budget_milli") / 1e3;
  cfg.burn_threshold = jnum(slo_cfg, "burn_threshold_milli") / 1e3;

  obs::Registry reg;
  obs::EventBuffer breach_events;
  obs::SloMonitor mon(cfg, &reg, &breach_events);
  std::size_t replayed = 0;
  for (const auto& rec : res.records) {
    if (rec.type != obs::FrameType::kSample) continue;
    const auto doc = obs::json::parse(rec.payload);
    if (!doc.has_value() || !doc->is_object()) continue;
    obs::SloInput in;
    in.ts_ns = static_cast<std::uint64_t>(jnum(&*doc, "ts_ns"));
    in.lag_p99_ns = jnum(&*doc, "lag_p99_ns");
    in.lag_n = static_cast<std::uint64_t>(jnum(&*doc, "lag_n"));
    in.stall_ratio = jnum(&*doc, "stall_ratio_ppm") / 1e6;
    in.stall_n = static_cast<std::uint64_t>(jnum(&*doc, "stall_n"));
    in.ttfb_p99_ns = jnum(&*doc, "ttfb_p99_ns");
    in.ttfb_n = static_cast<std::uint64_t>(jnum(&*doc, "ttfb_n"));
    mon.observe(in);
    ++replayed;
  }

  if (as_json) {
    std::printf("%s\n", mon.to_json().c_str());
    return 0;
  }
  std::printf("crfsctl slo: replayed %zu sample frames from %s%s\n", replayed,
              dir.c_str(), res.torn_tail ? " (torn tail)" : "");
  const auto doc = obs::json::parse(mon.to_json());
  const auto* objectives =
      doc.has_value() ? doc->get("objectives") : nullptr;
  if (objectives != nullptr && objectives->is_array()) {
    TextTable table({"Objective", "Target", "Burn 5m", "Burn 1h", "Bad/Obs", "Breached"});
    for (const auto& o : *objectives->array) {
      const auto* name = o.get("name");
      const auto* breached = o.get("breached");
      const bool fired = breached != nullptr && breached->boolean;
      char bs[32], bl[32];
      std::snprintf(bs, sizeof(bs), "%.2f", jnum(&o, "burn_short_milli") / 1e3);
      std::snprintf(bl, sizeof(bl), "%.2f", jnum(&o, "burn_long_milli") / 1e3);
      std::printf("SLO name=%s burn_short_milli=%.0f burn_long_milli=%.0f "
                  "breached=%d breaches=%.0f\n",
                  name != nullptr && name->is_string() ? name->string.c_str() : "?",
                  jnum(&o, "burn_short_milli"), jnum(&o, "burn_long_milli"),
                  fired ? 1 : 0, jnum(&o, "breaches"));
      table.add_row({name != nullptr && name->is_string() ? name->string : "?",
                     std::to_string(static_cast<long long>(jnum(&o, "target"))), bs, bl,
                     std::to_string(static_cast<long long>(jnum(&o, "bad_short"))) + "/" +
                         std::to_string(static_cast<long long>(jnum(&o, "obs_short"))),
                     fired ? "YES" : "no"});
    }
    std::printf("%s", table.render().c_str());
  }
  for (const auto& ev : breach_events.snapshot()) {
    std::printf("EVENT %s %s: %s\n", obs::severity_name(ev.severity), ev.rule.c_str(),
                ev.message.c_str());
  }
  return 0;
}

// Decision-log table shared by `crfsctl tune` and `crfsctl controller`.
void print_decisions(const std::vector<obs::CtlDecision>& decisions) {
  if (decisions.empty()) {
    std::printf("no decisions recorded\n");
    return;
  }
  TextTable table({"Seq", "Source", "Rule", "Knob", "Req", "From", "To",
                   "Outcome", "Reason"});
  for (const auto& d : decisions) {
    char req[32], from[32], to[32];
    std::snprintf(req, sizeof(req), "%g", d.requested);
    std::snprintf(from, sizeof(from), "%g", d.from);
    std::snprintf(to, sizeof(to), "%g", d.to);
    table.add_row({std::to_string(d.seq), d.source, d.rule, d.knob, req, from,
                   to, d.outcome, d.reason});
  }
  std::printf("%s", table.render().c_str());
}

// `crfsctl knobs`: mount and print the declared runtime knob table. No
// workload — the knob plane is fully populated at mount time, so this is
// the quickest way to see what a given option string makes tunable (and
// what the bounds are) before touching anything.
int cmd_knobs(int argc, char** argv) {
  if (argc < 3) return usage();
  bool as_json = false;
  const char* optstr = "";
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      as_json = true;
    } else {
      optstr = argv[i];
    }
  }
  auto opts = parse_mount_options(optstr);
  if (!opts.ok()) {
    std::fprintf(stderr, "error: %s\n", opts.error().to_string().c_str());
    return kExitBadArgs;
  }
  auto backend = PosixBackend::create(argv[2]);
  if (!backend.ok()) {
    std::fprintf(stderr, "error: %s\n", backend.error().to_string().c_str());
    return kExitUnreachable;
  }
  auto fs = Crfs::mount(std::move(backend.value()), opts.value().config);
  if (!fs.ok()) {
    std::fprintf(stderr, "error: %s\n", fs.error().to_string().c_str());
    return kExitUnreachable;
  }
  if (as_json) {
    std::printf("%s\n", fs.value()->knobs_json().c_str());
    return 0;
  }
  const KnobPlane& plane = fs.value()->knob_plane();
  std::printf("crfsctl knobs: %s (engine=%s, generation=%llu)\n",
              format_mount_options(opts.value()).c_str(),
              fs.value()->active_io_engine(),
              static_cast<unsigned long long>(plane.generation()));
  const KnobSnapshot* snap = plane.snapshot();
  TextTable table({"Knob", "Value", "Min", "Max", "Unit"});
  for (const KnobDef& def : plane.defs()) {
    char value[32], min[32], max[32];
    std::snprintf(value, sizeof(value), "%g", snap->get(def.name));
    std::snprintf(min, sizeof(min), "%g", def.min_value);
    std::snprintf(max, sizeof(max), "%g", def.max_value);
    table.add_row({def.name, value, min, max, def.unit});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}

// `crfsctl tune`: apply `knob=value` tokens through the .crfs_tune
// control-file shim — the same path a deployment script inside the mount
// would use — then print the audited decisions. Exit 1 when any token is
// rejected (the EINVAL message names the offending token).
int cmd_tune(int argc, char** argv) {
  if (argc < 4) return usage();
  bool as_json = false;
  const char* optstr = "";
  for (int i = 4; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      as_json = true;
    } else {
      optstr = argv[i];
    }
  }
  auto opts = parse_mount_options(optstr);
  if (!opts.ok()) {
    std::fprintf(stderr, "error: %s\n", opts.error().to_string().c_str());
    return kExitBadArgs;
  }
  auto backend = PosixBackend::create(argv[2]);
  if (!backend.ok()) {
    std::fprintf(stderr, "error: %s\n", backend.error().to_string().c_str());
    return kExitUnreachable;
  }
  auto fs = Crfs::mount(std::move(backend.value()), opts.value().config);
  if (!fs.ok()) {
    std::fprintf(stderr, "error: %s\n", fs.error().to_string().c_str());
    return kExitUnreachable;
  }

  int rc = 0;
  {
    FuseShim shim(*fs.value(), opts.value().fuse);
    auto h = shim.open(opts.value().config.tune_marker_path, {.write = true});
    if (!h.ok()) {
      std::fprintf(stderr, "error: %s\n", h.error().to_string().c_str());
      return 1;
    }
    const char* tokens = argv[3];
    std::vector<std::byte> payload(std::strlen(tokens));
    std::memcpy(payload.data(), tokens, payload.size());
    auto written = shim.write(h.value(), payload, 0);
    if (!written.ok()) {
      std::fprintf(stderr, "error: %s\n", written.error().to_string().c_str());
      rc = 1;
    }
    (void)shim.close(h.value());
  }

  const auto decisions = fs.value()->decision_log().snapshot();
  if (as_json) {
    std::printf("%s\n", obs::decisions_to_json(decisions).c_str());
  } else {
    print_decisions(decisions);
  }
  return rc;
}

// `crfsctl controller`: the full telemetry loop — run the instrumented
// workload with the sampler and feedback controller on, then print the
// controller state: knob generation, tick count, and the decision audit
// trail (empty when the pipeline stayed healthy, which is the expected
// outcome on a fast local disk).
int cmd_controller(int argc, char** argv) {
  if (argc < 3) return usage();
  bool as_json = false;
  const char* optstr = "";
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      as_json = true;
    } else {
      optstr = argv[i];
    }
  }
  auto opts = parse_mount_options(optstr);
  if (!opts.ok()) {
    std::fprintf(stderr, "error: %s\n", opts.error().to_string().c_str());
    return kExitBadArgs;
  }
  if (opts.value().config.sample_ms == 0) opts.value().config.sample_ms = 10;
  opts.value().config.controller = true;
  auto fs = run_instrumented_workload(argv[2], opts.value());
  if (!fs.ok()) {
    std::fprintf(stderr, "error: %s\n", fs.error().to_string().c_str());
    return kExitUnreachable;
  }
  if (as_json) {
    std::printf("%s\n", fs.value()->controller_json().c_str());
    return 0;
  }
  const obs::Controller* ctl = fs.value()->controller();
  std::printf("crfsctl controller: %s (engine=%s)\n",
              format_mount_options(opts.value()).c_str(),
              fs.value()->active_io_engine());
  std::printf("ticks=%llu generation=%llu decisions_total=%llu\n",
              static_cast<unsigned long long>(ctl != nullptr ? ctl->ticks() : 0),
              static_cast<unsigned long long>(fs.value()->knob_plane().generation()),
              static_cast<unsigned long long>(fs.value()->decision_log().total()));
  print_decisions(fs.value()->decision_log().snapshot());
  return 0;
}

// One refresh frame of `crfsctl watch`: windowed rates from the latest
// sample, occupancy gauges, and the running event count. Greppable
// (every frame starts with "WATCH") so scripts and the CLI test can
// consume the same output a human does.
void render_watch_frame(const obs::Sample& s, std::uint64_t events_total, bool ansi) {
  if (ansi) std::printf("\033[2K\r");
  const obs::Rate* bytes = s.counter_rate("crfs.io.pwrite_bytes");
  const obs::Rate* pwrites = s.histogram_rate("crfs.io.pwrite_ns");
  const obs::Rate* errors = s.counter_rate("crfs.io.pwrite_errors");
  const auto free_chunks = s.gauge("crfs.pool.free_chunks");
  const auto depth = s.gauge("crfs.queue.depth");
  const auto in_flight = s.gauge("crfs.io.in_flight");
  // Engine-level in-flight runs (ring occupancy for uring, 0 for sync).
  const auto ring = s.gauge("crfs.io.engine_inflight");
  std::printf("WATCH t=%.1fs io=%.1f MB/s pwrites=%.0f/s errs=%.0f/s "
              "free_chunks=%lld queue=%lld in_flight=%lld ring=%lld events=%llu",
              static_cast<double>(s.ts_ns) / 1e9,
              bytes != nullptr ? bytes->per_sec / 1e6 : 0.0,
              pwrites != nullptr ? pwrites->per_sec : 0.0,
              errors != nullptr ? errors->per_sec : 0.0,
              static_cast<long long>(free_chunks.value_or(-1)),
              static_cast<long long>(depth.value_or(-1)),
              static_cast<long long>(in_flight.value_or(-1)),
              static_cast<long long>(ring.value_or(-1)),
              static_cast<unsigned long long>(events_total));
  if (!ansi) std::printf("\n");
  std::fflush(stdout);
}

int cmd_watch(int argc, char** argv) {
  if (argc < 3) return usage();
  auto opts = parse_mount_options(argc >= 4 ? argv[3] : "");
  if (!opts.ok()) {
    std::fprintf(stderr, "error: %s\n", opts.error().to_string().c_str());
    return kExitBadArgs;
  }
  if (opts.value().config.sample_ms == 0) opts.value().config.sample_ms = 50;

  constexpr unsigned kRanks = 4;
  constexpr std::size_t kPerRank = 16 * MiB;
  constexpr std::size_t kRecord = 64 * KiB;

  auto backend = PosixBackend::create(argv[2]);
  if (!backend.ok()) {
    std::fprintf(stderr, "error: %s\n", backend.error().to_string().c_str());
    return kExitUnreachable;
  }
  auto fs = Crfs::mount(std::move(backend.value()), opts.value().config);
  if (!fs.ok()) {
    std::fprintf(stderr, "error: %s\n", fs.error().to_string().c_str());
    return kExitUnreachable;
  }

  std::printf("crfsctl watch: %u ranks x %s into %s (%s)\n", kRanks,
              format_bytes(kPerRank).c_str(), argv[2],
              format_mount_options(opts.value()).c_str());
  const bool ansi = isatty(fileno(stdout)) != 0;

  std::atomic<unsigned> ranks_left{kRanks};
  {
    FuseShim shim(*fs.value(), opts.value().fuse);
    std::vector<std::thread> ranks;
    for (unsigned r = 0; r < kRanks; ++r) {
      ranks.emplace_back([&, r] {
        const std::string path = ".crfsctl_watch_rank" + std::to_string(r);
        std::vector<std::byte> record(kRecord, static_cast<std::byte>(r));
        auto h = shim.open(path, {.create = true, .truncate = true, .write = true});
        if (h.ok()) {
          for (std::size_t off = 0; off < kPerRank; off += kRecord) {
            (void)shim.write(h.value(), record, off);
          }
          (void)shim.fsync(h.value());
          (void)shim.close(h.value());
        }
        ranks_left.fetch_sub(1);
      });
    }

    // Render loop: one frame per sampler period while the workload runs,
    // plus one final frame so short runs still show at least one.
    obs::Sampler* sampler = fs.value()->sampler();
    const auto period = std::chrono::milliseconds(opts.value().config.sample_ms);
    std::uint64_t last_seq = 0;
    do {
      std::this_thread::sleep_for(period);
      const auto latest = sampler->latest();
      if (latest.has_value() && (latest->seq + 1 != last_seq)) {
        last_seq = latest->seq + 1;
        render_watch_frame(*latest, fs.value()->event_log().total(), ansi);
      }
    } while (ranks_left.load() > 0);
    for (auto& t : ranks) t.join();
  }
  if (ansi) std::printf("\n");

  for (unsigned r = 0; r < kRanks; ++r) {
    (void)fs.value()->unlink(".crfsctl_watch_rank" + std::to_string(r));
  }

  const auto events = fs.value()->events();
  std::printf("\n%s\nsamples=%llu events=%zu\n", fs.value()->stats_report().c_str(),
              static_cast<unsigned long long>(fs.value()->sampler()->samples_taken()),
              events.size());
  for (const auto& e : events) {
    std::printf("EVENT %s %s: %s\n", obs::severity_name(e.severity), e.rule.c_str(),
                e.message.c_str());
  }
  return 0;
}

Result<MountOptions> options_from(int argc, char** argv, int index) {
  if (index < argc) return parse_mount_options(argv[index]);
  return MountOptions{};
}

int cmd_options(int argc, char** argv) {
  if (argc < 3) return usage();
  auto opts = parse_mount_options(argv[2]);
  if (!opts.ok()) {
    std::fprintf(stderr, "error: %s\n", opts.error().to_string().c_str());
    return kExitBadArgs;
  }
  std::printf("%s\n", format_mount_options(opts.value()).c_str());
  return 0;
}

int cmd_bench(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string dir = argv[2];
  auto opts = options_from(argc, argv, 3);
  if (!opts.ok()) {
    std::fprintf(stderr, "error: %s\n", opts.error().to_string().c_str());
    return kExitBadArgs;
  }

  constexpr unsigned kWriters = 4;
  constexpr std::size_t kPerWriter = 32 * MiB;
  constexpr std::size_t kRecord = 8 * KiB;  // checkpoint-like medium writes

  auto run = [&](bool through_crfs) -> double {
    auto backend = PosixBackend::create(dir);
    if (!backend.ok()) return -1;
    std::shared_ptr<BackendFs> shared = std::move(backend.value());
    std::unique_ptr<Crfs> fs;
    std::unique_ptr<FuseShim> shim;
    if (through_crfs) {
      auto mounted = Crfs::mount(shared, opts.value().config);
      if (!mounted.ok()) return -1;
      fs = std::move(mounted.value());
      shim = std::make_unique<FuseShim>(*fs, opts.value().fuse);
    }
    const Stopwatch sw;
    std::vector<std::thread> writers;
    for (unsigned w = 0; w < kWriters; ++w) {
      writers.emplace_back([&, w] {
        const std::string path = ".crfsctl_bench_" + std::to_string(w);
        std::vector<std::byte> record(kRecord, std::byte{0xAB});
        if (through_crfs) {
          auto h = shim->open(path, {.create = true, .truncate = true, .write = true});
          if (!h.ok()) return;
          for (std::size_t off = 0; off < kPerWriter; off += kRecord) {
            (void)shim->write(h.value(), record, off);
          }
          (void)shim->close(h.value());
        } else {
          auto h = shared->open_file(path, {.create = true, .truncate = true, .write = true});
          if (!h.ok()) return;
          for (std::size_t off = 0; off < kPerWriter; off += kRecord) {
            (void)shared->pwrite(h.value(), record, off);
          }
          (void)shared->close_file(h.value());
        }
      });
    }
    for (auto& t : writers) t.join();
    const double seconds = sw.elapsed_seconds();
    for (unsigned w = 0; w < kWriters; ++w) {
      (void)shared->unlink(".crfsctl_bench_" + std::to_string(w));
    }
    return seconds;
  };

  std::printf("crfsctl bench: %u writers x %s in %s writes -> %s\n", kWriters,
              format_bytes(kPerWriter).c_str(), format_bytes(kRecord).c_str(), dir.c_str());
  std::printf("mount options: %s\n", format_mount_options(opts.value()).c_str());
  std::printf("(best of 2 runs per mode; first touches absorb cold page-cache and\n"
              " writeback-throttle effects of the backing device)\n\n");
  auto best = [&](bool mode) {
    const double a = run(mode);
    const double b = run(mode);
    return a < 0 || b < 0 ? -1.0 : std::min(a, b);
  };
  const double direct = best(false);
  const double crfs = best(true);
  if (direct < 0 || crfs < 0) {
    std::fprintf(stderr, "bench failed (is %s writable?)\n", dir.c_str());
    return kExitUnreachable;
  }
  const double bytes = static_cast<double>(kWriters) * kPerWriter;
  TextTable table({"Path", "Time", "Throughput"});
  char buf[2][32];
  std::snprintf(buf[0], sizeof(buf[0]), "%.2f s", direct);
  std::snprintf(buf[1], sizeof(buf[1]), "%.0f MB/s", bytes / direct / 1e6);
  table.add_row({"direct", buf[0], buf[1]});
  std::snprintf(buf[0], sizeof(buf[0]), "%.2f s", crfs);
  std::snprintf(buf[1], sizeof(buf[1]), "%.0f MB/s", bytes / crfs / 1e6);
  table.add_row({"CRFS", buf[0], buf[1]});
  std::printf("%s", table.render().c_str());
  return 0;
}

int cmd_epochs(int argc, char** argv) {
  if (argc < 4) return usage();
  auto backend = PosixBackend::create(argv[2]);
  if (!backend.ok()) {
    std::fprintf(stderr, "error: %s\n", backend.error().to_string().c_str());
    return kExitUnreachable;
  }
  auto fs = Crfs::mount(std::move(backend.value()), Config{});
  if (!fs.ok()) return kExitUnreachable;
  FuseShim shim(*fs.value(), FuseOptions{});
  auto set = blcr::CheckpointSet::open(shim, argv[3]);
  if (!set.ok()) {
    std::fprintf(stderr, "error: %s\n", set.error().to_string().c_str());
    return 1;
  }
  auto epochs = set.value().epochs();
  if (!epochs.ok()) return 1;
  if (epochs.value().empty()) {
    std::printf("no committed epochs under %s/%s\n", argv[2], argv[3]);
    return 0;
  }
  TextTable table({"Epoch", "Ranks", "Total bytes"});
  for (unsigned e : epochs.value()) {
    auto info = set.value().inspect(e);
    if (!info.ok()) {
      table.add_row({std::to_string(e), "corrupt manifest", ""});
      continue;
    }
    std::uint64_t bytes = 0;
    for (const auto& r : info.value().rank_files) bytes += r.bytes;
    table.add_row({std::to_string(e), std::to_string(info.value().ranks),
                   format_bytes(bytes)});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}

int cmd_verify(int argc, char** argv) {
  if (argc < 4) return usage();
  auto backend = PosixBackend::create(argv[2]);
  if (!backend.ok()) {
    std::fprintf(stderr, "error: %s\n", backend.error().to_string().c_str());
    return kExitUnreachable;
  }
  auto fs = Crfs::mount(std::move(backend.value()), Config{});
  if (!fs.ok()) return kExitUnreachable;
  FuseShim shim(*fs.value(), FuseOptions{});
  auto set = blcr::CheckpointSet::open(shim, argv[3]);
  if (!set.ok()) return 1;

  unsigned epoch = 0;
  if (argc >= 5) {
    epoch = static_cast<unsigned>(std::atoi(argv[4]));
  } else {
    auto latest = set.value().latest();
    if (!latest.ok() || !latest.value().has_value()) {
      std::fprintf(stderr, "no committed epoch to verify\n");
      return 1;
    }
    epoch = *latest.value();
  }
  const Stopwatch sw;
  const Status st = set.value().verify(epoch);
  if (!st.ok()) {
    std::fprintf(stderr, "epoch %u FAILED verification: %s\n", epoch,
                 st.error().to_string().c_str());
    return 2;
  }
  std::printf("epoch %u verified OK in %.2f s (every rank image parses and matches "
              "its manifest CRC64)\n",
              epoch, sw.elapsed_seconds());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  if (std::strcmp(argv[1], "options") == 0) return cmd_options(argc, argv);
  if (std::strcmp(argv[1], "bench") == 0) return cmd_bench(argc, argv);
  if (std::strcmp(argv[1], "stats") == 0) return cmd_stats(argc, argv);
  if (std::strcmp(argv[1], "trace") == 0) return cmd_trace(argc, argv);
  if (std::strcmp(argv[1], "slow") == 0) return cmd_slow(argc, argv);
  if (std::strcmp(argv[1], "watch") == 0) return cmd_watch(argc, argv);
  if (std::strcmp(argv[1], "prom") == 0) return cmd_prom(argc, argv);
  if (std::strcmp(argv[1], "report") == 0) return cmd_report(argc, argv);
  if (std::strcmp(argv[1], "postmortem") == 0) return cmd_postmortem(argc, argv);
  if (std::strcmp(argv[1], "knobs") == 0) return cmd_knobs(argc, argv);
  if (std::strcmp(argv[1], "tune") == 0) return cmd_tune(argc, argv);
  if (std::strcmp(argv[1], "controller") == 0) return cmd_controller(argc, argv);
  if (std::strcmp(argv[1], "timeline") == 0) return cmd_timeline(argc, argv);
  if (std::strcmp(argv[1], "slo") == 0) return cmd_slo(argc, argv);
  if (std::strcmp(argv[1], "epochs") == 0) return cmd_epochs(argc, argv);
  if (std::strcmp(argv[1], "verify") == 0) return cmd_verify(argc, argv);
  return usage();
}
