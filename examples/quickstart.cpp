// Quickstart: mount CRFS over a real directory, write a file through the
// FUSE-shimmed POSIX-style API, fsync it, read it back, and inspect the
// mount statistics that show aggregation at work.
//
//   ./quickstart [backing-dir]     (default: a fresh temp directory)
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "backend/posix_backend.h"
#include "common/units.h"
#include "crfs/crfs.h"
#include "crfs/file.h"
#include "crfs/fuse_shim.h"

using namespace crfs;

int main(int argc, char** argv) {
  // 1. Pick a backing directory (any existing filesystem: the paper
  //    stacks CRFS over ext3, NFS, or Lustre the same way).
  std::filesystem::path dir = argc > 1 ? argv[1]
                                       : std::filesystem::temp_directory_path() /
                                             "crfs_quickstart";
  std::filesystem::create_directories(dir);
  std::printf("backing directory: %s\n", dir.c_str());

  auto backend = PosixBackend::create(dir.string());
  if (!backend.ok()) {
    std::fprintf(stderr, "backend: %s\n", backend.error().to_string().c_str());
    return 1;
  }

  // 2. Mount CRFS with the paper's defaults: 4 MB chunks, 16 MB pool,
  //    4 IO threads.
  auto fs = Crfs::mount(std::move(backend.value()), Config{});
  if (!fs.ok()) {
    std::fprintf(stderr, "mount: %s\n", fs.error().to_string().c_str());
    return 1;
  }
  std::printf("mounted CRFS (%s)\n", fs.value()->config().describe().c_str());

  // 3. Write a file through the FUSE-request path, the way a checkpoint
  //    library would: many small sequential writes.
  FuseShim shim(*fs.value(), FuseOptions{.big_writes = true});
  {
    auto file = File::open(shim, "hello.ckpt", {.create = true, .truncate = true, .write = true});
    if (!file.ok()) {
      std::fprintf(stderr, "open: %s\n", file.error().to_string().c_str());
      return 1;
    }
    const std::string line = "checkpoint chunk payload line\n";
    for (int i = 0; i < 10000; ++i) {
      if (auto st = file.value().write(line.data(), line.size()); !st.ok()) {
        std::fprintf(stderr, "write: %s\n", st.error().to_string().c_str());
        return 1;
      }
    }
    // fsync flushes the partial chunk and waits for all outstanding chunk
    // writes, then fsyncs the backend file (paper §IV-D2).
    if (auto st = file.value().fsync(); !st.ok()) {
      std::fprintf(stderr, "fsync: %s\n", st.error().to_string().c_str());
      return 1;
    }
    // close() blocks until "complete chunk count" == "write chunk count".
    if (auto st = file.value().close(); !st.ok()) {
      std::fprintf(stderr, "close: %s\n", st.error().to_string().c_str());
      return 1;
    }
  }

  // 4. Read it back through CRFS (reads pass through to the backend).
  {
    auto file = File::open(shim, "hello.ckpt", {.create = false, .truncate = false, .write = false});
    std::vector<std::byte> head(30);
    auto n = file.value().read(head);
    std::printf("read back %zu bytes: %.29s\n", n.value(),
                reinterpret_cast<const char*>(head.data()));
  }

  // 5. Aggregation at work: 10000 application writes became a handful of
  //    large backend writes.
  const MountStats& stats = fs.value()->stats();
  std::printf("\naggregation statistics:\n");
  std::printf("  application writes : %llu (%s)\n",
              static_cast<unsigned long long>(stats.app_writes.load()),
              format_bytes(stats.app_bytes.load()).c_str());
  std::printf("  backend chunk writes: %llu (full flushes %llu, partial %llu)\n",
              static_cast<unsigned long long>(fs.value()->backend_chunks_written()),
              static_cast<unsigned long long>(stats.full_flushes.load()),
              static_cast<unsigned long long>(stats.partial_flushes.load()));
  std::printf("  file on backing dir : %s/hello.ckpt\n", dir.c_str());
  std::printf("\nthe file is a plain file on the backing filesystem — restart-able\n"
              "without CRFS mounted, exactly as the paper's §V-F notes.\n");
  return 0;
}
