// Tiered burst-buffer benchmark (docs/PERFORMANCE.md "Tiered staging"):
// checkpoint the same epoch burst twice — once straight onto a throttled
// "remote" backend, once through a TieredBackend staging on memory and
// draining to an identically throttled remote — then drain and compare.
//
// What it proves, and how:
//   * Bandwidth decoupling, structurally: the remote is throttled to a
//     fraction of staging bandwidth (the measured stage/remote ratio is
//     printed and must be >= 4x), so checkpoint absorption through the
//     stage must run >= 2x faster than the remote-only mount. This is
//     the paper's burst-buffer claim: application-visible checkpoint
//     time tracks the fast tier while durability trails at remote speed.
//   * Durability correctness: after flush() every staged byte is drained
//     (drained == staged, stage occupancy back to zero, one eviction per
//     epoch) and every epoch ledger row carries drained_bytes == its
//     checkpoint bytes with drain_end_ns past the epoch's end_ns.
//   * Observability: drain lag and stage occupancy surface in stats_json
//     ("tier" section) while units are still pending.
//
// Env knobs: CRFS_BENCH_BYTES overrides the per-rank image size and
// CRFS_BENCH_REPS the repetitions (best-of). CRFS_BENCH_STRICT=1 turns
// the wall-clock absorption gate from advisory into hard (the structural
// gates are always hard).
//
// Output: a TextTable for humans, BENCH_TIERED_* greppable lines for CI,
// and BENCH_TIERED.json next to the binary for artifact upload.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "backend/mem_backend.h"
#include "backend/tiered_backend.h"
#include "backend/wrappers.h"
#include "common/table.h"
#include "common/units.h"
#include "common/wall_clock.h"
#include "crfs/crfs.h"
#include "crfs/fuse_shim.h"

using namespace crfs;

namespace {

std::string rank_path(unsigned e, unsigned r) {
  return "rank" + std::to_string(r) + ".ckpt." + std::to_string(e);
}

// One checkpoint burst: `epochs` rounds of `ranks` writer threads, each
// streaming its image in 256 KiB records, close + epoch_end per round.
// Returns the wall seconds the application observed (its absorption time).
double run_burst(Crfs& fs, unsigned epochs, unsigned ranks, std::uint64_t per_rank) {
  constexpr std::size_t kRecord = 256 * KiB;
  FuseShim shim(fs, FuseOptions{.big_writes = true});
  const Stopwatch sw;
  for (unsigned e = 0; e < epochs; ++e) {
    (void)fs.epoch_begin("burst-" + std::to_string(e));
    std::vector<std::thread> writers;
    for (unsigned r = 0; r < ranks; ++r) {
      writers.emplace_back([&, e, r] {
        std::vector<std::byte> record(kRecord, static_cast<std::byte>(r + e + 1));
        auto h = shim.open(rank_path(e, r),
                           {.create = true, .truncate = true, .write = true});
        if (!h.ok()) return;
        for (std::uint64_t off = 0; off < per_rank; off += kRecord) {
          (void)shim.write(h.value(), record, off);
        }
        (void)shim.close(h.value());
      });
    }
    for (auto& t : writers) t.join();
    (void)fs.epoch_end();
  }
  return sw.elapsed_seconds();
}

}  // namespace

int main() {
  unsigned ranks = 2;
  unsigned epochs = 2;
  std::uint64_t per_rank = 16 * MiB;
  if (const char* env = std::getenv("CRFS_BENCH_BYTES")) {
    if (auto parsed = parse_bytes(env)) per_rank = *parsed;
  }
  int reps = 2;
  if (const char* env = std::getenv("CRFS_BENCH_REPS")) {
    reps = std::max(1, std::atoi(env));
  }
  const bool strict = std::getenv("CRFS_BENCH_STRICT") != nullptr;

  // The remote tier: bandwidth-capped with per-op latency, emulating a
  // parallel-filesystem share. The stage is memory — the measured
  // stage/remote ratio is printed below and must clear 4x for the 2x
  // absorption gate to be meaningful.
  const double remote_bw = 96.0 * MiB;
  const auto remote_op = std::chrono::microseconds(50);
  const std::uint64_t total_bytes =
      static_cast<std::uint64_t>(ranks) * epochs * per_rank;
  const double total_mib = static_cast<double>(total_bytes) / static_cast<double>(MiB);

  std::printf("=== Tiered burst buffer (stage=mem vs remote-only) ===\n");
  std::printf("%u epochs x %u ranks x %s; remote throttled to %.0f MiB/s + %lld us/op; "
              "best of %d reps\n\n",
              epochs, ranks, format_bytes(per_rank).c_str(), remote_bw / MiB,
              static_cast<long long>(remote_op.count()), reps);

  // Stage-bandwidth probe: raw pwrite streaming into a MemBackend, the
  // same path the tier's staging writes take.
  double stage_probe_bw = 0.0;
  {
    MemBackend probe;
    auto f = probe.open_file("probe", {.create = true, .truncate = true, .write = true});
    std::vector<std::byte> rec(1 * MiB, std::byte{42});
    const Stopwatch sw;
    for (std::uint64_t off = 0; off < 64 * MiB; off += rec.size()) {
      (void)probe.pwrite(f.value(), rec, off);
    }
    stage_probe_bw = 64.0 * MiB / sw.elapsed_seconds();
    (void)probe.close_file(f.value());
  }
  const double tier_ratio = stage_probe_bw / (remote_bw);
  std::printf("stage probe: %.0f MiB/s (%.0fx the throttled remote)\n\n",
              stage_probe_bw / MiB, tier_ratio);

  // -- Mode R: remote-only (no staging tier) ---------------------------------
  double remote_secs = -1.0;
  for (int rep = 0; rep < reps; ++rep) {
    auto remote = std::make_shared<ThrottledBackend>(std::make_shared<MemBackend>(),
                                                     remote_bw, remote_op);
    auto fs = Crfs::mount(remote, Config{});
    if (!fs.ok()) {
      std::printf("remote-only mount failed\n");
      return 1;
    }
    const double secs = run_burst(*fs.value(), epochs, ranks, per_rank);
    if (remote_secs < 0 || secs < remote_secs) remote_secs = secs;
  }

  // -- Mode T: tiered (stage on memory, drain to the same remote) ------------
  double tiered_secs = -1.0;
  double drain_secs = 0.0;
  TierStats pre_flush{};
  TierStats post_flush{};
  bool tier_section_visible = false;
  bool lag_visible = false;
  std::vector<obs::EpochRecord> ledger;
  for (int rep = 0; rep < reps; ++rep) {
    auto remote = std::make_shared<ThrottledBackend>(std::make_shared<MemBackend>(),
                                                     remote_bw, remote_op);
    auto tier = std::make_shared<TieredBackend>(std::make_shared<MemBackend>(), remote,
                                                TieredOptions{});
    auto fs = Crfs::mount(tier, Config{});
    if (!fs.ok()) {
      std::printf("tiered mount failed\n");
      return 1;
    }
    const double secs = run_burst(*fs.value(), epochs, ranks, per_rank);

    // Occupancy + drain lag must be observable while units are pending.
    const TierStats mid = tier->tier_stats();
    const std::string sj = fs.value()->stats_json();
    if (sj.find("\"tier\":{\"enabled\":true") != std::string::npos) {
      tier_section_visible = true;
    }
    if (mid.stage_used > 0 || mid.pending_units > 0) lag_visible = true;

    const Stopwatch dsw;
    if (!tier->flush().ok()) {
      std::printf("tier flush failed\n");
      return 1;
    }
    if (tiered_secs < 0 || secs < tiered_secs) {
      tiered_secs = secs;
      drain_secs = dsw.elapsed_seconds();
      pre_flush = mid;
      post_flush = tier->tier_stats();
      ledger = fs.value()->epochs();
    }
  }

  const double absorption_ratio = remote_secs / tiered_secs;
  const double drain_bw =
      drain_secs > 0 ? static_cast<double>(post_flush.drained_bytes -
                                           (pre_flush.drained_bytes)) /
                           drain_secs
                     : 0.0;

  TextTable table({"Mode", "Absorb", "MiB/s", "Drain", "Drain MiB/s"});
  char buf[5][40];
  std::snprintf(buf[0], sizeof(buf[0]), "%.3f s", remote_secs);
  std::snprintf(buf[1], sizeof(buf[1]), "%.1f", total_mib / remote_secs);
  table.add_row({"remote-only", buf[0], buf[1], "-", "-"});
  std::snprintf(buf[0], sizeof(buf[0]), "%.3f s", tiered_secs);
  std::snprintf(buf[1], sizeof(buf[1]), "%.1f", total_mib / tiered_secs);
  std::snprintf(buf[2], sizeof(buf[2]), "%.3f s", drain_secs);
  std::snprintf(buf[3], sizeof(buf[3]), "%.1f", drain_bw / MiB);
  table.add_row({"tiered (stage=mem)", buf[0], buf[1], buf[2], buf[3]});
  std::printf("%s\n", table.render().c_str());

  // -- Greppable lines (CI bench-smoke) --------------------------------------
  std::printf("BENCH_TIERED_REMOTE_ONLY %.1f MiB/s absorb=%.3fs\n",
              total_mib / remote_secs, remote_secs);
  std::printf("BENCH_TIERED_STAGED %.1f MiB/s absorb=%.3fs drain=%.3fs "
              "drain_bw=%.1f MiB/s\n",
              total_mib / tiered_secs, tiered_secs, drain_secs, drain_bw / MiB);
  std::printf("BENCH_TIERED_ABSORPTION %.2fx (gate >=2.0x %s)\n", absorption_ratio,
              strict ? "hard" : "advisory unless structural");

  // -- Structural gates ------------------------------------------------------
  bool ok = true;
  // Remote genuinely slower than the stage, so the comparison means something.
  if (tier_ratio < 4.0) ok = false;
  // Every staged byte became remote-durable; occupancy fully released.
  if (post_flush.drained_bytes + post_flush.spill_bytes < total_bytes) ok = false;
  if (post_flush.stage_used != 0) ok = false;
  if (post_flush.units_evicted < epochs) ok = false;
  // The ledger rows carry the drain columns: each epoch's bytes drained,
  // completion past the epoch's end (durability trails absorption).
  std::uint64_t ledger_drained = 0;
  bool drain_trails = !ledger.empty();
  for (const auto& rec : ledger) {
    ledger_drained += rec.drained_bytes;
    if (rec.drained_bytes > 0 && rec.drain_end_ns <= rec.end_ns) drain_trails = false;
  }
  if (ledger_drained + post_flush.spill_bytes < total_bytes) ok = false;
  if (!drain_trails) ok = false;
  if (!tier_section_visible || !lag_visible) ok = false;
  // Absorption: structural when the ratio clears 2x with the remote
  // throttled this hard; STRICT keeps it hard either way.
  const bool absorbed = absorption_ratio >= 2.0;
  if (strict && !absorbed) ok = false;
  if (absorbed == false && tier_ratio >= 4.0) ok = false;

  std::printf("BENCH_TIERED_STRUCTURAL stage_ratio=%.0fx drained=%llu spilled=%llu "
              "evicted=%llu stage_used=%llu ledger_drained=%llu drain_trails=%s "
              "occupancy_visible=%s verdict=%s\n",
              tier_ratio, static_cast<unsigned long long>(post_flush.drained_bytes),
              static_cast<unsigned long long>(post_flush.spill_bytes),
              static_cast<unsigned long long>(post_flush.units_evicted),
              static_cast<unsigned long long>(post_flush.stage_used),
              static_cast<unsigned long long>(ledger_drained),
              drain_trails ? "yes" : "no", lag_visible ? "yes" : "no",
              ok ? "PASS" : "FAIL");

  // -- JSON artifact ---------------------------------------------------------
  if (std::FILE* f = std::fopen("BENCH_TIERED.json", "w")) {
    std::fprintf(f,
                 "{\n  \"epochs\": %u,\n  \"ranks\": %u,\n  \"per_rank_bytes\": %llu,\n"
                 "  \"remote_bw_mib_s\": %.1f,\n  \"stage_probe_mib_s\": %.1f,\n"
                 "  \"stage_remote_ratio\": %.1f,\n"
                 "  \"remote_only_seconds\": %.6f,\n  \"tiered_seconds\": %.6f,\n"
                 "  \"drain_seconds\": %.6f,\n  \"drain_bw_mib_s\": %.1f,\n"
                 "  \"absorption_ratio\": %.3f,\n"
                 "  \"drained_bytes\": %llu,\n  \"spill_bytes\": %llu,\n"
                 "  \"units_evicted\": %llu,\n  \"stalls\": %llu,\n"
                 "  \"structural_pass\": %s\n}\n",
                 epochs, ranks, static_cast<unsigned long long>(per_rank),
                 remote_bw / MiB, stage_probe_bw / MiB, tier_ratio, remote_secs,
                 tiered_secs, drain_secs, drain_bw / MiB, absorption_ratio,
                 static_cast<unsigned long long>(post_flush.drained_bytes),
                 static_cast<unsigned long long>(post_flush.spill_bytes),
                 static_cast<unsigned long long>(post_flush.units_evicted),
                 static_cast<unsigned long long>(post_flush.stalls),
                 ok ? "true" : "false");
    std::fclose(f);
    std::printf("wrote BENCH_TIERED.json\n");
  }

  if (!ok) {
    std::printf("BENCH_TIERED verdict: FAIL\n");
    return 1;
  }
  std::printf("BENCH_TIERED verdict: PASS\n");
  return 0;
}
