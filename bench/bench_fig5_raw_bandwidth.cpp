// Reproduces Fig 5: CRFS raw write bandwidth (8 processes on a single
// node) — measured on the REAL CRFS implementation, not the DES.
//
// Methodology follows §V-B exactly: 8 parallel writers each stream data
// into CRFS; filled chunks picked up by the IO threads are discarded
// (NullBackend) "so we can measure the raw performance of CRFS to
// aggregate write streams, precluding the impacts of different back-end
// filesystems". Sweeps buffer-pool size {4..64 MB} x chunk size
// {128K..4M} with 4 IO threads, as the paper's figure does.
//
// Absolute numbers reflect this machine, not the paper's 2007 Xeon — the
// shape to check: every chunk >= 128K reaches high bandwidth, bandwidth
// rises with pool size and flattens past ~32 MB, and a pool that holds
// only one chunk (4M chunks / 4M pool) serializes the pipeline.
//
// CRFS_FIG5_BYTES overrides the per-writer volume (default 64 MB).
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "backend/null_backend.h"
#include "common/table.h"
#include "common/units.h"
#include "common/wall_clock.h"
#include "crfs/crfs.h"
#include "crfs/fuse_shim.h"

using namespace crfs;

namespace {

double measure(std::size_t pool, std::size_t chunk, std::size_t per_writer) {
  auto backend = std::make_shared<NullBackend>();
  auto fs = Crfs::mount(backend, Config{.chunk_size = chunk, .pool_size = pool});
  if (!fs.ok()) return 0.0;
  FuseShim shim(*fs.value(), FuseOptions{.big_writes = true});

  constexpr int kWriters = 8;
  const Stopwatch sw;
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      auto h = shim.open("writer" + std::to_string(w),
                         {.create = true, .truncate = true, .write = true});
      if (!h.ok()) return;
      std::vector<std::byte> buf(1 * MiB, std::byte{0xCD});
      for (std::size_t off = 0; off < per_writer; off += buf.size()) {
        (void)shim.write(h.value(), buf, off);
      }
      (void)shim.close(h.value());
    });
  }
  for (auto& t : writers) t.join();
  const double seconds = sw.elapsed_seconds();
  return static_cast<double>(per_writer) * kWriters / seconds;
}

}  // namespace

int main() {
  std::size_t per_writer = 64 * MiB;
  if (const char* env = std::getenv("CRFS_FIG5_BYTES")) {
    if (auto parsed = parse_bytes(env)) per_writer = *parsed;
  }

  std::printf("=== Figure 5: CRFS Raw Write Bandwidth (8 writers, chunks discarded) ===\n");
  std::printf("Real CRFS, NullBackend, 4 IO threads, %s per writer.\n",
              format_bytes(per_writer).c_str());
  std::printf("Paper (2007 Xeon): >700 MB/s at 16 MB pool for chunks >= 128K; rises\n");
  std::printf("with pool size, flattens past 32 MB. Absolute values are machine-local.\n\n");

  const std::size_t pools[] = {4 * MiB, 8 * MiB, 16 * MiB, 32 * MiB, 64 * MiB};
  const std::size_t chunks[] = {128 * KiB, 256 * KiB, 512 * KiB, 1 * MiB, 2 * MiB, 4 * MiB};

  TextTable table({"Chunk \\ Pool", "4MB", "8MB", "16MB", "32MB", "64MB"});
  for (const std::size_t chunk : chunks) {
    std::vector<std::string> row{format_bytes(chunk)};
    for (const std::size_t pool : pools) {
      if (pool < chunk) {
        row.push_back("-");
        continue;
      }
      const double bw = measure(pool, chunk, per_writer);
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.0f MB/s", bw / 1e6);
      row.push_back(buf);
    }
    table.add_row(row);
  }
  std::printf("%s\n", table.render().c_str());

  std::printf(
      "Shape notes vs the paper:\n"
      "  * every chunk size >= 128K sustains high bandwidth — reproduced: all\n"
      "    cells above sit within a narrow band, far above any backend's rate.\n"
      "  * the paper's pool-size ramp (rising to 32 MB) comes from writers\n"
      "    blocking while 2007-era IO threads drained chunks at speeds\n"
      "    comparable to the writers' fill rate. On this host the discard\n"
      "    backend consumes chunks orders of magnitude faster than FUSE-split\n"
      "    memcpy fills them, so pool depth never binds and the ramp cannot\n"
      "    manifest; the DES ablations (A1-A3) carry that trade-off instead.\n");
  return 0;
}
