// The paper's published numbers, transcribed for side-by-side reporting.
// Every bench prints "paper vs measured" so reproduction quality is
// visible in the output itself (see EXPERIMENTS.md for the digest).
#pragma once

#include <array>

#include "mpi/stack_model.h"
#include "sim/experiment.h"

namespace crfs::bench {

/// One cell of Figs 6-8: average local checkpoint time in seconds.
struct PaperCell {
  mpi::LuClass cls;
  sim::BackendKind backend;
  double native_s;
  double crfs_s;   ///< < 0 means the paper has no number (OpenMPI C/lustre native failed)
};

/// Fig 6 (MVAPICH2).
inline constexpr std::array<PaperCell, 9> kFig6Mvapich2 = {{
    {mpi::LuClass::kB, sim::BackendKind::kExt3, 1.9, 0.5},
    {mpi::LuClass::kB, sim::BackendKind::kLustre, 4.0, 0.5},
    {mpi::LuClass::kB, sim::BackendKind::kNfs, 35.5, 10.4},
    {mpi::LuClass::kC, sim::BackendKind::kExt3, 2.9, 0.9},
    {mpi::LuClass::kC, sim::BackendKind::kLustre, 6.0, 1.1},
    {mpi::LuClass::kC, sim::BackendKind::kNfs, 45.3, 21.3},
    {mpi::LuClass::kD, sim::BackendKind::kExt3, 19.0, 17.2},
    {mpi::LuClass::kD, sim::BackendKind::kLustre, 29.3, 20.7},
    {mpi::LuClass::kD, sim::BackendKind::kNfs, 159.4, 163.4},
}};

/// Fig 7 (MPICH2).
inline constexpr std::array<PaperCell, 9> kFig7Mpich2 = {{
    {mpi::LuClass::kB, sim::BackendKind::kExt3, 0.8, 0.1},
    {mpi::LuClass::kB, sim::BackendKind::kLustre, 1.2, 0.1},
    {mpi::LuClass::kB, sim::BackendKind::kNfs, 9.3, 1.1},
    {mpi::LuClass::kC, sim::BackendKind::kExt3, 1.8, 0.2},
    {mpi::LuClass::kC, sim::BackendKind::kLustre, 2.8, 0.3},
    {mpi::LuClass::kC, sim::BackendKind::kNfs, 18.5, 7.7},
    {mpi::LuClass::kD, sim::BackendKind::kExt3, 17.6, 2.2},
    {mpi::LuClass::kD, sim::BackendKind::kLustre, 25.8, 19.7},
    {mpi::LuClass::kD, sim::BackendKind::kNfs, 117.3, 157.3},
}};

/// Fig 8 (OpenMPI). Native Lustre at class C failed in the paper.
inline constexpr std::array<PaperCell, 9> kFig8Openmpi = {{
    {mpi::LuClass::kB, sim::BackendKind::kExt3, 1.3, 0.2},
    {mpi::LuClass::kB, sim::BackendKind::kLustre, 2.5, 0.2},
    {mpi::LuClass::kB, sim::BackendKind::kNfs, 17.7, 8.2},
    {mpi::LuClass::kC, sim::BackendKind::kExt3, 2.5, 0.4},
    {mpi::LuClass::kC, sim::BackendKind::kLustre, -1.0, 0.7},
    {mpi::LuClass::kC, sim::BackendKind::kNfs, 27.3, 16.0},
    {mpi::LuClass::kD, sim::BackendKind::kExt3, 17.7, 6.8},
    {mpi::LuClass::kD, sim::BackendKind::kLustre, 27.8, 20.5},
    {mpi::LuClass::kD, sim::BackendKind::kNfs, 133.1, 163.3},
}};

/// Fig 9 (LU.D on 16 nodes, Lustre, MVAPICH2): ppn -> (native, CRFS).
struct PaperFig9Point {
  unsigned ppn;
  double native_s;
  double crfs_s;
  double reduction_pct;
};
inline constexpr std::array<PaperFig9Point, 4> kFig9 = {{
    {1, 14.5, 13.4, -7.6},
    {2, 20.5, 14.7, -28.0},
    {4, 22.8, 16.2, -28.7},
    {8, 29.3, 20.7, -29.6},
}};

/// Table I (LU.C.64 to ext3): % of writes / % of data / % of time.
struct PaperTable1Row {
  const char* bucket;
  double writes_pct;
  double data_pct;
  double time_pct;
};
inline constexpr std::array<PaperTable1Row, 10> kTable1 = {{
    {"0-64", 50.86, 0.04, 0.17},
    {"64-256", 0.61, 0.00, 0.00},
    {"256-1K", 0.25, 0.01, 0.00},
    {"1K-4K", 9.46, 1.53, 0.01},
    {"4K-16K", 36.49, 11.36, 44.66},
    {"16K-64K", 0.74, 0.77, 6.55},
    {"64K-256K", 0.49, 3.79, 11.80},
    {"256K-512K", 0.25, 3.58, 1.75},
    {"512K-1M", 0.61, 17.72, 14.72},
    {"> 1M", 0.25, 61.21, 20.35},
}};

/// Table II: per-process image MB at 128 procs (also in mpi::stack_model,
/// repeated here as the published reference).
struct PaperTable2Row {
  mpi::LuClass cls;
  mpi::Stack stack;
  double total_mb;
  double per_process_mb;
};
inline constexpr std::array<PaperTable2Row, 9> kTable2 = {{
    {mpi::LuClass::kB, mpi::Stack::kMvapich2, 903.2, 7.1},
    {mpi::LuClass::kB, mpi::Stack::kOpenMpi, 909.1, 7.1},
    {mpi::LuClass::kB, mpi::Stack::kMpich2, 497.8, 3.9},
    {mpi::LuClass::kC, mpi::Stack::kMvapich2, 1928.7, 15.1},
    {mpi::LuClass::kC, mpi::Stack::kOpenMpi, 1751.7, 13.7},
    {mpi::LuClass::kC, mpi::Stack::kMpich2, 1359.6, 10.7},
    {mpi::LuClass::kD, mpi::Stack::kMvapich2, 13653.9, 106.7},
    {mpi::LuClass::kD, mpi::Stack::kOpenMpi, 13864.9, 108.3},
    {mpi::LuClass::kD, mpi::Stack::kMpich2, 13261.2, 103.6},
}};

}  // namespace crfs::bench
