// Calibration sensitivity analysis.
//
// The cluster experiments run on a simulation whose constants were fitted
// to the paper's anchors (calibration.h). A fair question is whether the
// reproduced SHAPES depend on those exact values or on the mechanisms.
// This bench perturbs the most influential constants by 0.5x and 2x and
// reports the headline shape metrics under each perturbation:
//   * Lustre LU.C speedup stays multi-X,
//   * ext3 LU.D speedup stays small but > 1,
//   * NFS LU.D stays <= ~1 (the outlier),
//   * native ext3 per-process spread stays >> CRFS spread.
#include <cstdio>
#include <functional>

#include "common/table.h"
#include "sim/experiment.h"

using namespace crfs;

namespace {

struct ShapeMetrics {
  double lustre_c_speedup;
  double ext3_d_speedup;
  double nfs_d_speedup;
  double spread_ratio;  // native ext3 spread / CRFS spread
};

ShapeMetrics measure(const sim::Calibration& cal) {
  auto cell = [&](mpi::LuClass cls, sim::BackendKind bk) {
    sim::ExperimentConfig cfg;
    cfg.lu_class = cls;
    cfg.backend = bk;
    cfg.cal = cal;
    cfg.mode = sim::FsMode::kNative;
    const double native = sim::run_experiment(cfg).mean_rank_seconds;
    cfg.mode = sim::FsMode::kCrfs;
    const double crfs = sim::run_experiment(cfg).mean_rank_seconds;
    return native / crfs;
  };
  sim::ExperimentConfig spread_cfg;
  spread_cfg.lu_class = mpi::LuClass::kC;
  spread_cfg.nodes = 8;
  spread_cfg.backend = sim::BackendKind::kExt3;
  spread_cfg.cal = cal;
  spread_cfg.mode = sim::FsMode::kNative;
  const double native_spread = sim::run_experiment(spread_cfg).spread();
  spread_cfg.mode = sim::FsMode::kCrfs;
  const double crfs_spread = sim::run_experiment(spread_cfg).spread();

  return {cell(mpi::LuClass::kC, sim::BackendKind::kLustre),
          cell(mpi::LuClass::kD, sim::BackendKind::kExt3),
          cell(mpi::LuClass::kD, sim::BackendKind::kNfs),
          native_spread / crfs_spread};
}

}  // namespace

int main() {
  std::printf("=== Calibration Sensitivity: do the paper's shapes survive +/-2x "
              "perturbations? ===\n\n");

  struct Knob {
    const char* name;
    std::function<void(sim::Calibration&, double)> scale;
  };
  const Knob knobs[] = {
      {"disk_seek", [](sim::Calibration& c, double f) { c.disk_seek *= f; }},
      {"disk_seq_bw", [](sim::Calibration& c, double f) { c.disk_seq_bw *= f; }},
      {"fuse_station_bw", [](sim::Calibration& c, double f) { c.fuse_station_bw *= f; }},
      {"lustre_small_op_cost",
       [](sim::Calibration& c, double f) { c.lustre_small_op_cost *= f; }},
      {"ost_backing_bw", [](sim::Calibration& c, double f) { c.ost_backing_bw *= f; }},
      {"nfs_server_disk_seek",
       [](sim::Calibration& c, double f) { c.nfs_server_disk_seek *= f; }},
      {"dirty_limit",
       [](sim::Calibration& c, double f) {
         c.dirty_limit = static_cast<std::uint64_t>(static_cast<double>(c.dirty_limit) * f);
       }},
  };

  TextTable table({"Perturbation", "Lustre-C speedup", "ext3-D speedup",
                   "NFS-D speedup", "spread ratio"});
  char buf[4][32];
  auto add_row = [&](const std::string& name, const ShapeMetrics& m) {
    std::snprintf(buf[0], sizeof(buf[0]), "%.1fx", m.lustre_c_speedup);
    std::snprintf(buf[1], sizeof(buf[1]), "%.2fx", m.ext3_d_speedup);
    std::snprintf(buf[2], sizeof(buf[2]), "%.2fx", m.nfs_d_speedup);
    std::snprintf(buf[3], sizeof(buf[3]), "%.1fx", m.spread_ratio);
    table.add_row({name, buf[0], buf[1], buf[2], buf[3]});
  };

  add_row("baseline (fitted)", measure(sim::Calibration{}));
  int violations = 0;
  for (const auto& knob : knobs) {
    for (const double factor : {0.5, 2.0}) {
      sim::Calibration cal;
      knob.scale(cal, factor);
      const auto m = measure(cal);
      char name[64];
      std::snprintf(name, sizeof(name), "%s x%.1f", knob.name, factor);
      add_row(name, m);
      // Shape criteria (loose, by design).
      if (m.lustre_c_speedup < 2.0 || m.ext3_d_speedup < 1.0 ||
          m.nfs_d_speedup > 1.25 || m.spread_ratio < 1.2) {
        violations += 1;
      }
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Shape criteria: Lustre-C > 2x, ext3-D > 1x, NFS-D <= ~1.25x, "
              "spread ratio > 1.2x.\n");
  std::printf("Violations across %d perturbed runs: %d\n",
              static_cast<int>(std::size(knobs)) * 2, violations);
  std::printf("(Paper-reproduction conclusions rest on the mechanisms, not on any\n"
              "single fitted constant.)\n");
  return 0;
}
