// Concurrent checkpoint-stream write-path benchmark (docs/PERFORMANCE.md).
//
// Measures aggregate FuseShim -> Crfs -> MemBackend throughput for 1, 4,
// and 16 parallel streams, each issuing sequential 256 KiB writes that
// the shim splits into <=128 KiB FUSE-sized requests. MemBackend (not
// NullBackend) so the IO threads pay a real memcpy per chunk — that is
// what makes backend-call coalescing and per-file locking visible in the
// numbers instead of being hidden behind a free discard.
//
// Two configurations per stream count:
//   * tuned   — mount defaults (sharded pool, io_batch=8, pwritev runs)
//   * legacy  — pool_shards=1, io_batch=1: the pre-scaling pipeline shape
//     (single pool lock, one pop and one pwrite per chunk)
//
// Output: one BENCH_WRITEPATH_STREAMS<N> line per tuned stream count (the
// CI smoke greps these), a BENCH_WRITEPATH_COALESCED_PWRITES line proving
// the vectored-write path engaged, and BENCH_WRITEPATH.json in the
// current directory for artifact upload.
//
// Env knobs: CRFS_BENCH_BYTES overrides the per-stream volume and
// CRFS_BENCH_REPS the repetitions (best-of); CRFS_BENCH_BATCH /
// CRFS_BENCH_POOL override the tuned config's io_batch / pool_size for
// one-off experiments. Defaults keep the full run under ~30 s.
//
// Wall-clock caveat: on a single-core host the writer threads and IO
// workers timeshare one CPU, so lock-contention wins cannot show up as
// throughput; compare the backend-pwrite counts (structure) there and
// trust the multistream MiB/s only on real multicore hardware.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "backend/mem_backend.h"
#include "common/units.h"
#include "crfs/crfs.h"
#include "crfs/fuse_shim.h"

using namespace crfs;

namespace {

struct RunResult {
  double mib_s = 0.0;
  std::uint64_t coalesced_pwrites = 0;
  std::uint64_t backend_pwrites = 0;
};

RunResult run_streams(int streams, std::size_t per_stream, const Config& cfg) {
  auto mem = std::make_shared<MemBackend>();
  auto fs = Crfs::mount(mem, cfg);
  if (!fs.ok()) {
    std::fprintf(stderr, "mount failed: %s\n", fs.error().to_string().c_str());
    return {};
  }
  FuseShim shim(*fs.value(), FuseOptions{});

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> writers;
  writers.reserve(static_cast<std::size_t>(streams));
  for (int w = 0; w < streams; ++w) {
    writers.emplace_back([&, w] {
      auto h = shim.open("stream" + std::to_string(w),
                         {.create = true, .truncate = true, .write = true});
      if (!h.ok()) return;
      std::vector<std::byte> buf(256 * KiB, std::byte{7});
      // Wrap the offset so MemBackend files stay bounded (32 MiB each)
      // while the measured volume is per_stream bytes.
      const std::size_t wrap = 32 * MiB;
      std::uint64_t off = 0;
      for (std::size_t done = 0; done < per_stream; done += buf.size()) {
        (void)shim.write(h.value(), buf, off);
        off += buf.size();
        if (off >= wrap) off = 0;
      }
      (void)shim.close(h.value());
    });
  }
  for (auto& t : writers) t.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  RunResult r;
  r.mib_s = static_cast<double>(per_stream) * streams / MiB / seconds;
  r.coalesced_pwrites = fs.value()->metrics().counter("crfs.io.coalesced_pwrites").value();
  r.backend_pwrites = mem->total_pwrites();
  return r;
}

RunResult best_of(int reps, int streams, std::size_t per_stream, const Config& cfg) {
  RunResult best;
  for (int i = 0; i < reps; ++i) {
    const RunResult r = run_streams(streams, per_stream, cfg);
    if (r.mib_s > best.mib_s) best = r;
  }
  return best;
}

}  // namespace

int main() {
  std::size_t base_bytes = 256 * MiB;
  if (const char* env = std::getenv("CRFS_BENCH_BYTES")) {
    if (auto parsed = parse_bytes(env)) base_bytes = *parsed;
  }
  int reps = 3;
  if (const char* env = std::getenv("CRFS_BENCH_REPS")) {
    reps = std::max(1, std::atoi(env));
  }

  Config tuned{};  // mount defaults: auto shards, io_batch=8
  if (const char* env = std::getenv("CRFS_BENCH_BATCH")) tuned.io_batch = static_cast<unsigned>(std::atoi(env));
  if (const char* env = std::getenv("CRFS_BENCH_POOL")) { if (auto p = parse_bytes(env)) tuned.pool_size = *p; }
  Config legacy{};
  legacy.pool_shards = 1;
  legacy.io_batch = 1;

  std::printf("=== Multistream write-path throughput (FuseShim -> Crfs -> MemBackend) ===\n");
  std::printf("tuned: %s | legacy: %s | best of %d reps\n\n",
              tuned.describe().c_str(), legacy.describe().c_str(), reps);

  const int stream_counts[] = {1, 4, 16};
  std::vector<std::pair<int, RunResult>> tuned_results;
  std::uint64_t total_coalesced = 0;
  for (const int streams : stream_counts) {
    // Keep the 16-stream run's total volume in the same ballpark as the
    // single-stream run so wall-clock stays flat across rows.
    const std::size_t per_stream = streams >= 16 ? base_bytes / 2 : base_bytes;
    const RunResult t = best_of(reps, streams, per_stream, tuned);
    const RunResult l = best_of(reps, streams, per_stream, legacy);
    tuned_results.emplace_back(streams, t);
    total_coalesced += t.coalesced_pwrites;
    std::printf("streams=%-2d  tuned %8.1f MiB/s (%llu backend pwrites, %llu coalesced)"
                "  legacy %8.1f MiB/s (%llu pwrites)  speedup %.2fx\n",
                streams, t.mib_s, static_cast<unsigned long long>(t.backend_pwrites),
                static_cast<unsigned long long>(t.coalesced_pwrites), l.mib_s,
                static_cast<unsigned long long>(l.backend_pwrites),
                l.mib_s > 0 ? t.mib_s / l.mib_s : 0.0);
  }

  std::printf("\n");
  for (const auto& [streams, r] : tuned_results) {
    std::printf("BENCH_WRITEPATH_STREAMS%d %.1f MiB/s\n", streams, r.mib_s);
  }
  std::printf("BENCH_WRITEPATH_COALESCED_PWRITES %llu\n",
              static_cast<unsigned long long>(total_coalesced));

  // Machine-readable copy for the CI artifact.
  if (std::FILE* f = std::fopen("BENCH_WRITEPATH.json", "w")) {
    std::fprintf(f, "{\n  \"config\": \"%s\",\n  \"streams\": {\n", tuned.describe().c_str());
    for (std::size_t i = 0; i < tuned_results.size(); ++i) {
      const auto& [streams, r] = tuned_results[i];
      std::fprintf(f,
                   "    \"%d\": {\"mib_per_s\": %.1f, \"backend_pwrites\": %llu, "
                   "\"coalesced_pwrites\": %llu}%s\n",
                   streams, r.mib_s, static_cast<unsigned long long>(r.backend_pwrites),
                   static_cast<unsigned long long>(r.coalesced_pwrites),
                   i + 1 < tuned_results.size() ? "," : "");
    }
    std::fprintf(f, "  },\n  \"coalesced_pwrites_total\": %llu\n}\n",
                 static_cast<unsigned long long>(total_coalesced));
    std::fclose(f);
    std::printf("wrote BENCH_WRITEPATH.json\n");
  }

  if (total_coalesced == 0) {
    std::fprintf(stderr, "FAIL: sequential workload produced no coalesced pwrites\n");
    return 1;
  }
  return 0;
}
