// Concurrent checkpoint-stream write-path benchmark (docs/PERFORMANCE.md).
//
// Measures aggregate FuseShim -> Crfs -> MemBackend throughput for 1, 4,
// and 16 parallel streams, each issuing sequential 256 KiB writes that
// the shim splits into <=128 KiB FUSE-sized requests. MemBackend (not
// NullBackend) so the IO threads pay a real memcpy per chunk — that is
// what makes backend-call coalescing and per-file locking visible in the
// numbers instead of being hidden behind a free discard.
//
// Two configurations per stream count:
//   * tuned   — mount defaults (sharded pool, io_batch=8, pwritev runs)
//   * legacy  — pool_shards=1, io_batch=1: the pre-scaling pipeline shape
//     (single pool lock, one pop and one pwrite per chunk)
//
// Output: one BENCH_WRITEPATH_STREAMS<N> line per tuned stream count (the
// CI smoke greps these), a BENCH_WRITEPATH_COALESCED_PWRITES line proving
// the vectored-write path engaged, and BENCH_WRITEPATH.json in the
// current directory for artifact upload.
//
// A third section compares IO engines (sync pwritev vs raw io_uring) over
// a real PosixBackend directory at the same stream counts, printing
// BENCH_WRITEPATH_SYNC_STREAMS<N> / BENCH_WRITEPATH_URING_STREAMS<N>
// lines plus BENCH_IOENGINE.json recording the *active* engine after
// runtime detection and the max in-flight ring depth. When io_uring is
// unavailable (old kernel, seccomp, CRFS_FORCE_SYNC=1) the uring rows
// silently run the sync fallback — the JSON says so; nothing fails.
//
// Env knobs: CRFS_BENCH_BYTES overrides the per-stream volume and
// CRFS_BENCH_REPS the repetitions (best-of); CRFS_BENCH_BATCH /
// CRFS_BENCH_POOL override the tuned config's io_batch / pool_size for
// one-off experiments. Defaults keep the full run under ~30 s.
//
// Wall-clock caveat: on a single-core host the writer threads and IO
// workers timeshare one CPU, so lock-contention wins cannot show up as
// throughput; compare the backend-pwrite counts (structure) there and
// trust the multistream MiB/s only on real multicore hardware.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <filesystem>

#include "backend/mem_backend.h"
#include "backend/posix_backend.h"
#include "common/units.h"
#include "crfs/crfs.h"
#include "crfs/fuse_shim.h"

using namespace crfs;

namespace {

struct RunResult {
  double mib_s = 0.0;
  std::uint64_t coalesced_pwrites = 0;
  std::uint64_t backend_pwrites = 0;
};

RunResult run_streams(int streams, std::size_t per_stream, const Config& cfg) {
  auto mem = std::make_shared<MemBackend>();
  auto fs = Crfs::mount(mem, cfg);
  if (!fs.ok()) {
    std::fprintf(stderr, "mount failed: %s\n", fs.error().to_string().c_str());
    return {};
  }
  FuseShim shim(*fs.value(), FuseOptions{});

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> writers;
  writers.reserve(static_cast<std::size_t>(streams));
  for (int w = 0; w < streams; ++w) {
    writers.emplace_back([&, w] {
      auto h = shim.open("stream" + std::to_string(w),
                         {.create = true, .truncate = true, .write = true});
      if (!h.ok()) return;
      std::vector<std::byte> buf(256 * KiB, std::byte{7});
      // Wrap the offset so MemBackend files stay bounded (32 MiB each)
      // while the measured volume is per_stream bytes.
      const std::size_t wrap = 32 * MiB;
      std::uint64_t off = 0;
      for (std::size_t done = 0; done < per_stream; done += buf.size()) {
        (void)shim.write(h.value(), buf, off);
        off += buf.size();
        if (off >= wrap) off = 0;
      }
      (void)shim.close(h.value());
    });
  }
  for (auto& t : writers) t.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  RunResult r;
  r.mib_s = static_cast<double>(per_stream) * streams / MiB / seconds;
  r.coalesced_pwrites = fs.value()->metrics().counter("crfs.io.coalesced_pwrites").value();
  r.backend_pwrites = mem->total_pwrites();
  return r;
}

RunResult best_of(int reps, int streams, std::size_t per_stream, const Config& cfg) {
  RunResult best;
  for (int i = 0; i < reps; ++i) {
    const RunResult r = run_streams(streams, per_stream, cfg);
    if (r.mib_s > best.mib_s) best = r;
  }
  return best;
}

// ---- IO-engine dimension (sync vs io_uring over a real PosixBackend) ----

struct EngineRunResult {
  double mib_s = 0.0;
  std::string active_engine;       ///< what actually ran after detection
  std::uint64_t max_inflight = 0;  ///< crfs.io.inflight_depth histogram max
};

EngineRunResult run_engine(int streams, std::size_t per_stream, const Config& cfg) {
  // Fresh backing dir per run so each repetition starts cold.
  char tmpl[] = "/tmp/crfs_bench_XXXXXX";
  if (::mkdtemp(tmpl) == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    return {};
  }
  const std::string root = tmpl;
  EngineRunResult r;
  {
    auto posix = PosixBackend::create(root);
    if (!posix.ok()) {
      std::fprintf(stderr, "posix backend: %s\n", posix.error().to_string().c_str());
      return {};
    }
    std::shared_ptr<BackendFs> backend = std::move(posix.value());
    auto fs = Crfs::mount(backend, cfg);
    if (!fs.ok()) {
      std::fprintf(stderr, "mount failed: %s\n", fs.error().to_string().c_str());
      return {};
    }
    FuseShim shim(*fs.value(), FuseOptions{});

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> writers;
    writers.reserve(static_cast<std::size_t>(streams));
    for (int w = 0; w < streams; ++w) {
      writers.emplace_back([&, w] {
        auto h = shim.open("stream" + std::to_string(w),
                           {.create = true, .truncate = true, .write = true});
        if (!h.ok()) return;
        std::vector<std::byte> buf(256 * KiB, std::byte{7});
        const std::size_t wrap = 32 * MiB;  // bound on-disk file size
        std::uint64_t off = 0;
        for (std::size_t done = 0; done < per_stream; done += buf.size()) {
          (void)shim.write(h.value(), buf, off);
          off += buf.size();
          if (off >= wrap) off = 0;
        }
        (void)shim.close(h.value());
      });
    }
    for (auto& t : writers) t.join();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

    r.mib_s = static_cast<double>(per_stream) * streams / MiB / seconds;
    r.active_engine = fs.value()->active_io_engine();
    const auto snap = fs.value()->metrics().snapshot();
    for (const auto& [name, hist] : snap.histograms) {
      if (name == "crfs.io.inflight_depth") r.max_inflight = hist.max;
    }
  }  // unmount + close backend before removing the directory
  std::error_code ec;
  std::filesystem::remove_all(root, ec);
  return r;
}

EngineRunResult best_of_engine(int reps, int streams, std::size_t per_stream,
                               const Config& cfg) {
  EngineRunResult best;
  for (int i = 0; i < reps; ++i) {
    EngineRunResult r = run_engine(streams, per_stream, cfg);
    if (r.mib_s > best.mib_s) {
      const std::uint64_t depth = std::max(best.max_inflight, r.max_inflight);
      best = std::move(r);
      best.max_inflight = depth;
    } else {
      best.max_inflight = std::max(best.max_inflight, r.max_inflight);
    }
  }
  return best;
}

}  // namespace

int main() {
  std::size_t base_bytes = 256 * MiB;
  if (const char* env = std::getenv("CRFS_BENCH_BYTES")) {
    if (auto parsed = parse_bytes(env)) base_bytes = *parsed;
  }
  int reps = 3;
  if (const char* env = std::getenv("CRFS_BENCH_REPS")) {
    reps = std::max(1, std::atoi(env));
  }

  Config tuned{};  // mount defaults: auto shards, io_batch=8
  if (const char* env = std::getenv("CRFS_BENCH_BATCH")) tuned.io_batch = static_cast<unsigned>(std::atoi(env));
  if (const char* env = std::getenv("CRFS_BENCH_POOL")) { if (auto p = parse_bytes(env)) tuned.pool_size = *p; }
  Config legacy{};
  legacy.pool_shards = 1;
  legacy.io_batch = 1;

  std::printf("=== Multistream write-path throughput (FuseShim -> Crfs -> MemBackend) ===\n");
  std::printf("tuned: %s | legacy: %s | best of %d reps\n\n",
              tuned.describe().c_str(), legacy.describe().c_str(), reps);

  const int stream_counts[] = {1, 4, 16};
  std::vector<std::pair<int, RunResult>> tuned_results;
  std::uint64_t total_coalesced = 0;
  for (const int streams : stream_counts) {
    // Keep the 16-stream run's total volume in the same ballpark as the
    // single-stream run so wall-clock stays flat across rows.
    const std::size_t per_stream = streams >= 16 ? base_bytes / 2 : base_bytes;
    const RunResult t = best_of(reps, streams, per_stream, tuned);
    const RunResult l = best_of(reps, streams, per_stream, legacy);
    tuned_results.emplace_back(streams, t);
    total_coalesced += t.coalesced_pwrites;
    std::printf("streams=%-2d  tuned %8.1f MiB/s (%llu backend pwrites, %llu coalesced)"
                "  legacy %8.1f MiB/s (%llu pwrites)  speedup %.2fx\n",
                streams, t.mib_s, static_cast<unsigned long long>(t.backend_pwrites),
                static_cast<unsigned long long>(t.coalesced_pwrites), l.mib_s,
                static_cast<unsigned long long>(l.backend_pwrites),
                l.mib_s > 0 ? t.mib_s / l.mib_s : 0.0);
  }

  std::printf("\n");
  for (const auto& [streams, r] : tuned_results) {
    std::printf("BENCH_WRITEPATH_STREAMS%d %.1f MiB/s\n", streams, r.mib_s);
  }
  std::printf("BENCH_WRITEPATH_COALESCED_PWRITES %llu\n",
              static_cast<unsigned long long>(total_coalesced));

  // Machine-readable copy for the CI artifact.
  if (std::FILE* f = std::fopen("BENCH_WRITEPATH.json", "w")) {
    std::fprintf(f, "{\n  \"config\": \"%s\",\n  \"streams\": {\n", tuned.describe().c_str());
    for (std::size_t i = 0; i < tuned_results.size(); ++i) {
      const auto& [streams, r] = tuned_results[i];
      std::fprintf(f,
                   "    \"%d\": {\"mib_per_s\": %.1f, \"backend_pwrites\": %llu, "
                   "\"coalesced_pwrites\": %llu}%s\n",
                   streams, r.mib_s, static_cast<unsigned long long>(r.backend_pwrites),
                   static_cast<unsigned long long>(r.coalesced_pwrites),
                   i + 1 < tuned_results.size() ? "," : "");
    }
    std::fprintf(f, "  },\n  \"coalesced_pwrites_total\": %llu\n}\n",
                 static_cast<unsigned long long>(total_coalesced));
    std::fclose(f);
    std::printf("wrote BENCH_WRITEPATH.json\n");
  }

  // ---- IO-engine comparison: sync vs io_uring over PosixBackend ----------
  // Smaller chunks + modest batch produce many submissions per second, so
  // the uring rows can actually build ring depth instead of one giant
  // coalesced writev per batch. Both engines share the exact same shape;
  // only Config::io_engine differs.
  Config engine_base{};
  engine_base.chunk_size = 1 * MiB;
  engine_base.pool_size = 16 * MiB;
  engine_base.io_threads = 2;
  engine_base.io_batch = 4;
  engine_base.uring_depth = 64;

  // Disk writes are slower than MemBackend memcpys; trim the volume so the
  // engine section stays in the same wall-clock ballpark.
  const std::size_t engine_bytes = std::max<std::size_t>(base_bytes / 4, 8 * MiB);

  std::printf("\n=== IO-engine comparison (FuseShim -> Crfs -> PosixBackend) ===\n");
  std::printf("base: %s | per-stream volume %zu MiB | best of %d reps\n\n",
              engine_base.describe().c_str(), engine_bytes / MiB, reps);

  struct EngineRow {
    const char* requested;
    int streams;
    EngineRunResult r;
  };
  std::vector<EngineRow> engine_rows;
  std::string uring_active = "sync";
  for (const IoEngineKind kind : {IoEngineKind::kSync, IoEngineKind::kUring}) {
    Config cfg = engine_base;
    cfg.io_engine = kind;
    for (const int streams : stream_counts) {
      const std::size_t per_stream = streams >= 16 ? engine_bytes / 2 : engine_bytes;
      const EngineRunResult r = best_of_engine(reps, streams, per_stream, cfg);
      if (kind == IoEngineKind::kUring) uring_active = r.active_engine;
      std::printf("engine=%-5s streams=%-2d  %8.1f MiB/s  (active=%s, max ring depth %llu)\n",
                  io_engine_name(kind), streams, r.mib_s, r.active_engine.c_str(),
                  static_cast<unsigned long long>(r.max_inflight));
      engine_rows.push_back({io_engine_name(kind), streams, r});
    }
  }
  if (uring_active != "uring") {
    std::printf("note: io_uring unavailable here — uring rows ran the sync fallback\n");
  }

  std::printf("\n");
  for (const auto& row : engine_rows) {
    // SYNC/URING name the *requested* engine; BENCH_IOENGINE.json records
    // what actually ran, so a fallback host still emits comparable keys.
    std::printf("BENCH_WRITEPATH_%s_STREAMS%d %.1f MiB/s\n",
                row.requested == std::string("uring") ? "URING" : "SYNC", row.streams,
                row.r.mib_s);
  }

  if (std::FILE* f = std::fopen("BENCH_IOENGINE.json", "w")) {
    std::fprintf(f, "{\n  \"config\": \"%s\",\n  \"io_threads\": %u,\n",
                 engine_base.describe().c_str(), engine_base.io_threads);
    std::fprintf(f, "  \"uring_available\": %s,\n",
                 uring_active == "uring" ? "true" : "false");
    std::fprintf(f, "  \"engines\": {\n");
    for (std::size_t i = 0; i < engine_rows.size(); ++i) {
      const auto& row = engine_rows[i];
      std::fprintf(f,
                   "    \"%s_streams%d\": {\"requested\": \"%s\", \"active\": \"%s\", "
                   "\"mib_per_s\": %.1f, \"max_inflight_depth\": %llu}%s\n",
                   row.requested, row.streams, row.requested, row.r.active_engine.c_str(),
                   row.r.mib_s, static_cast<unsigned long long>(row.r.max_inflight),
                   i + 1 < engine_rows.size() ? "," : "");
    }
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
    std::printf("wrote BENCH_IOENGINE.json\n");
  }

  if (total_coalesced == 0) {
    std::fprintf(stderr, "FAIL: sequential workload produced no coalesced pwrites\n");
    return 1;
  }
  return 0;
}
