// Reproduces Fig 9: CRFS scalability at different levels of process
// multiplexing — LU.D on 16 nodes with 1/2/4/8 processes per node,
// Lustre, native vs CRFS (MVAPICH2).
#include <cstdio>

#include "bench/paper_data.h"
#include "common/table.h"
#include "common/units.h"

using namespace crfs;

int main() {
  std::printf("=== Figure 9: CRFS Scalability vs Process Multiplexing "
              "(LU.D, 16 nodes, Lustre) ===\n\n");

  TextTable table({"Nodes x PPN", "Native", "(paper)", "CRFS", "(paper)",
                   "Reduction", "(paper)"});
  BarChart chart("Average local checkpoint time", "s");
  char buf[32];

  for (const auto& point : bench::kFig9) {
    const auto cell = sim::run_cell(mpi::Stack::kMvapich2, mpi::LuClass::kD,
                                    sim::BackendKind::kLustre, 16, point.ppn);
    const double reduction =
        100.0 * (cell.crfs_seconds - cell.native_seconds) / cell.native_seconds;
    std::snprintf(buf, sizeof(buf), "%.1f%%", reduction);
    std::string red = buf;
    std::snprintf(buf, sizeof(buf), "%.1f%%", point.reduction_pct);
    table.add_row({"16 x " + std::to_string(point.ppn), format_seconds(cell.native_seconds),
                   format_seconds(point.native_s), format_seconds(cell.crfs_seconds),
                   format_seconds(point.crfs_s), red, buf});

    const std::string label = "16x" + std::to_string(point.ppn);
    chart.add(label + " native", cell.native_seconds);
    chart.add(label + " CRFS  ", cell.crfs_seconds);
    chart.add_gap();
  }
  std::printf("%s\n%s\n", table.render().c_str(), chart.render().c_str());
  std::printf("Shape: ~no benefit at 1 ppn (little IO concurrency per node); the\n"
              "reduction grows with multiplexing and saturates near -30%%.\n");
  return 0;
}
