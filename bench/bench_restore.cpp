// Restore-side read pipeline benchmark (docs/PERFORMANCE.md "Read path
// and restore"): checkpoint N rank images through CRFS, then restart
// them through a read-throttled backend four ways — {sync, uring} read
// engine x {readahead on, off} — plus a direct BackendSource baseline,
// verifying the payload CRC every single time.
//
// What it proves, and how:
//   * Correctness: every restore path must reproduce the checkpoint's
//     payload CRC bit-identically; any mismatch exits nonzero.
//   * Prefetch wins structurally, not just on wall clock: with readahead
//     on, the sequential restore scan must issue strictly fewer blocking
//     preads (crfs.read.sync_preads) than with readahead off, and the
//     prefetch hit count must be nonzero. On a real uring engine the
//     in-flight depth histogram must exceed 1. Wall-clock MiB/s is
//     reported but only gates under CRFS_BENCH_STRICT=1 — CI runners
//     are too noisy for timing gates (see bench_multistream.cpp).
//   * Readahead-off costs (about) nothing: with the knob off the read
//     path must issue exactly one backend pread per application read and
//     zero prefetches — the structural form of the paper's "no
//     additional overhead on file reads" passthrough claim. The wall
//     clock delta vs the direct baseline is printed as the <=5% guard
//     (hard only under CRFS_BENCH_STRICT=1).
//
// Env knobs: CRFS_BENCH_BYTES overrides the per-rank image size and
// CRFS_BENCH_REPS the repetitions (best-of). Defaults keep the run well
// under CI's bench-smoke budget.
//
// Output: a TextTable for humans, BENCH_RESTORE_* greppable lines for
// CI, and BENCH_RESTORE.json next to the binary for artifact upload.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <vector>

#include <filesystem>

#include "backend/mem_backend.h"
#include "backend/posix_backend.h"
#include "backend/wrappers.h"
#include "blcr/checkpoint_writer.h"
#include "blcr/process_image.h"
#include "blcr/restart_reader.h"
#include "blcr/sinks.h"
#include "common/table.h"
#include "common/units.h"
#include "common/wall_clock.h"
#include "crfs/file.h"
#include "crfs/fuse_shim.h"

using namespace crfs;

namespace {

struct ModeStats {
  std::string name;        // table / JSON label
  std::string key;         // BENCH_RESTORE_<KEY> suffix
  double seconds = -1.0;   // best-of-reps wall time; <0 = CRC failure
  double mib_s = 0.0;
  double ttfb_ms = 0.0;    // mean scan time-to-first-byte (restore ledger)
  std::uint64_t ops = 0;
  std::uint64_t bytes = 0;
  std::uint64_t prefetch_issued = 0;
  std::uint64_t prefetch_hits = 0;
  std::uint64_t prefetch_wasted = 0;
  std::uint64_t sync_preads = 0;
  std::uint64_t inflight_max = 0;  // crfs.read.inflight_depth max
  std::string engine;              // active read engine after fallback
};

std::string rank_path(unsigned r) { return "rank" + std::to_string(r) + ".ckpt"; }

}  // namespace

int main() {
  unsigned ranks = 2;
  std::uint64_t image_bytes = 32 * MiB;
  if (const char* env = std::getenv("CRFS_BENCH_BYTES")) {
    if (auto parsed = parse_bytes(env)) image_bytes = *parsed;
  }
  int reps = 3;
  if (const char* env = std::getenv("CRFS_BENCH_REPS")) {
    reps = std::max(1, std::atoi(env));
  }
  const bool strict = std::getenv("CRFS_BENCH_STRICT") != nullptr;

  // Slow enough that prefetch depth matters, fast enough for CI smoke.
  const double throttle_bw = 512.0 * MiB;
  const auto throttle_op = std::chrono::microseconds(50);

  std::printf("=== Restore read pipeline (readahead on/off x sync/uring) ===\n");
  std::printf("%u ranks x %s images; read-throttled backend %.0f MiB/s + %lld us/op; "
              "best of %d reps\n\n",
              ranks, format_bytes(image_bytes).c_str(), throttle_bw / MiB,
              static_cast<long long>(throttle_op.count()), reps);

  auto mem = std::make_shared<MemBackend>();
  std::vector<std::uint64_t> crcs(ranks);

  // Checkpoint through CRFS (write path untouched by this bench).
  {
    auto fs = Crfs::mount(mem, Config{});
    if (!fs.ok()) {
      std::printf("mount failed\n");
      return 1;
    }
    FuseShim shim(*fs.value(), FuseOptions{.big_writes = true});
    for (unsigned r = 0; r < ranks; ++r) {
      const auto image = blcr::ProcessImage::synthesize(r, image_bytes, 7);
      auto file = File::open(shim, rank_path(r),
                             {.create = true, .truncate = true, .write = true});
      blcr::CrfsFileSink sink(file.value());
      crcs[r] = blcr::CheckpointWriter::write_image(image, sink).value();
      (void)file.value().close();
    }
  }
  const double total_mib = static_cast<double>(ranks) *
                           static_cast<double>(image_bytes) / static_cast<double>(MiB);

  // The throttled view every restore path reads through: same wrapper,
  // same rate, so direct-vs-CRFS deltas are pure read-path overhead.
  auto throttled = std::make_shared<ThrottledBackend>(mem, throttle_bw, throttle_op);
  throttled->throttle_reads(true);

  // Baseline: blcr reads the backend files directly, no CRFS mount.
  auto restore_direct = [&]() -> double {
    const Stopwatch sw;
    for (unsigned r = 0; r < ranks; ++r) {
      auto bf = throttled->open_file(rank_path(r),
                                     {.create = false, .truncate = false, .write = false});
      blcr::BackendSource source(*throttled, bf.value());
      auto restored = blcr::RestartReader::read_image(source);
      if (!restored.ok() || restored.value().payload_crc != crcs[r]) return -1.0;
      (void)throttled->close_file(bf.value());
    }
    return sw.elapsed_seconds();
  };

  // One CRFS restore pass; fills `out` with the mount's read telemetry.
  auto restore_mode = [&](std::shared_ptr<BackendFs> backend, IoEngineKind engine,
                          bool readahead, ModeStats& out) -> bool {
    out.seconds = -1.0;
    for (int rep = 0; rep < reps; ++rep) {
      Config cfg{};
      cfg.io_engine = engine;
      cfg.readahead = readahead;
      cfg.readahead_window = 8;
      auto fs = Crfs::mount(backend, cfg);
      if (!fs.ok()) return false;
      FuseShim shim(*fs.value(), FuseOptions{.big_writes = true});
      const Stopwatch sw;
      for (unsigned r = 0; r < ranks; ++r) {
        auto file = File::open(shim, rank_path(r),
                               {.create = false, .truncate = false, .write = false});
        blcr::CrfsFileSource source(file.value());
        auto restored = blcr::RestartReader::read_image(source);
        if (!restored.ok() || restored.value().payload_crc != crcs[r]) return false;
        (void)file.value().close();
      }
      const double secs = sw.elapsed_seconds();
      if (out.seconds < 0 || secs < out.seconds) out.seconds = secs;
      // Telemetry is per-mount and deterministic in structure; the last
      // rep's counters describe every rep's shape.
      auto& m = fs.value()->metrics();
      out.ops = m.counter("crfs.read.ops").value();
      out.bytes = m.counter("crfs.read.bytes").value();
      out.prefetch_issued = m.counter("crfs.read.prefetch_issued").value();
      out.prefetch_hits = m.counter("crfs.read.prefetch_hits").value();
      out.prefetch_wasted = m.counter("crfs.read.prefetch_wasted").value();
      out.sync_preads = m.counter("crfs.read.sync_preads").value();
      out.inflight_max = m.histogram("crfs.read.inflight_depth").snapshot().max;
      out.engine = fs.value()->active_read_engine();
      double ttfb_sum = 0.0;
      std::uint64_t scans = 0;
      for (const auto& row : fs.value()->restore_ledger()) {
        if (row.active) continue;
        ttfb_sum += static_cast<double>(row.ttfb_ns);
        scans += 1;
      }
      out.ttfb_ms = scans > 0 ? ttfb_sum / static_cast<double>(scans) / 1e6 : 0.0;
    }
    out.mib_s = total_mib / out.seconds;
    return true;
  };

  (void)restore_direct();  // warm-up
  double direct = -1.0;
  for (int rep = 0; rep < reps; ++rep) {
    const double secs = restore_direct();
    if (secs < 0) {
      std::printf("BENCH_RESTORE_CRC FAIL (direct baseline)\n");
      return 1;
    }
    if (direct < 0 || secs < direct) direct = secs;
  }

  std::vector<ModeStats> modes(5);
  modes[0].name = "sync + readahead";
  modes[0].key = "SYNC_RA";
  modes[1].name = "sync, no readahead";
  modes[1].key = "SYNC_NORA";
  modes[2].name = "uring + readahead";
  modes[2].key = "URING_RA";
  modes[3].name = "uring, no readahead";
  modes[3].key = "URING_NORA";
  modes[4].name = "posix + uring readahead";
  modes[4].key = "POSIX_URING_RA";
  const IoEngineKind engines[] = {IoEngineKind::kSync, IoEngineKind::kSync,
                                  IoEngineKind::kUring, IoEngineKind::kUring};
  const bool readaheads[] = {true, false, true, false, true};
  for (std::size_t i = 0; i < 4; ++i) {
    if (!restore_mode(throttled, engines[i], readaheads[i], modes[i])) {
      std::printf("BENCH_RESTORE_CRC FAIL (%s)\n", modes[i].name.c_str());
      return 1;
    }
  }

  // Fifth mode: the same images on a real PosixBackend, where the read
  // engine can drive raw io_uring (decorated backends have no raw fd, so
  // the ring falls back to inline preads above — by design, wrapper
  // semantics win). This is the mode whose inflight-depth histogram can
  // legitimately exceed 1.
  const std::filesystem::path posix_dir =
      std::filesystem::temp_directory_path() /
      ("crfs_bench_restore_" + std::to_string(static_cast<long>(::getpid())));
  std::filesystem::create_directories(posix_dir);
  {
    auto posix = PosixBackend::create(posix_dir.string());
    if (!posix.ok()) {
      std::printf("posix backend unavailable, skipping POSIX_URING_RA\n");
    } else {
      auto posix_backend = std::shared_ptr<BackendFs>(std::move(posix.value()));
      // Replay the checkpoint files out of the mem backend byte-for-byte.
      std::vector<std::byte> copy_buf(4 * MiB);
      for (unsigned r = 0; r < ranks; ++r) {
        auto src = mem->open_file(rank_path(r),
                                  {.create = false, .truncate = false, .write = false});
        auto dst = posix_backend->open_file(
            rank_path(r), {.create = true, .truncate = true, .write = true});
        std::uint64_t off = 0;
        for (;;) {
          auto n = mem->pread(src.value(), copy_buf, off);
          if (!n.ok() || n.value() == 0) break;
          (void)posix_backend->pwrite(
              dst.value(), std::span<const std::byte>(copy_buf.data(), n.value()), off);
          off += n.value();
        }
        (void)mem->close_file(src.value());
        (void)posix_backend->close_file(dst.value());
      }
      if (!restore_mode(posix_backend, IoEngineKind::kUring, true, modes[4])) {
        std::printf("BENCH_RESTORE_CRC FAIL (%s)\n", modes[4].name.c_str());
        return 1;
      }
    }
  }
  std::error_code ec;
  std::filesystem::remove_all(posix_dir, ec);

  TextTable table({"Restore path", "Time", "MiB/s", "TTFB", "hits/issued",
                   "sync preads", "inflight max", "vs direct"});
  char buf[6][40];
  std::snprintf(buf[0], sizeof(buf[0]), "%.3f s", direct);
  std::snprintf(buf[1], sizeof(buf[1]), "%.1f", total_mib / direct);
  table.add_row({"direct from backend (no CRFS)", buf[0], buf[1], "-", "-", "-", "-", ""});
  for (const auto& m : modes) {
    if (m.seconds < 0) continue;  // skipped mode
    std::snprintf(buf[0], sizeof(buf[0]), "%.3f s", m.seconds);
    std::snprintf(buf[1], sizeof(buf[1]), "%.1f", m.mib_s);
    std::snprintf(buf[2], sizeof(buf[2]), "%.2f ms", m.ttfb_ms);
    std::snprintf(buf[3], sizeof(buf[3]), "%llu/%llu",
                  static_cast<unsigned long long>(m.prefetch_hits),
                  static_cast<unsigned long long>(m.prefetch_issued));
    std::snprintf(buf[4], sizeof(buf[4]), "%llu",
                  static_cast<unsigned long long>(m.sync_preads));
    std::snprintf(buf[5], sizeof(buf[5]), "%llu",
                  static_cast<unsigned long long>(m.inflight_max));
    char vs[32];
    // The posix mode runs unthrottled on a different device — its wall
    // clock is not comparable with the throttled direct baseline.
    if (m.key == "POSIX_URING_RA") {
      std::snprintf(vs, sizeof(vs), "n/a");
    } else {
      std::snprintf(vs, sizeof(vs), "%+.0f%%", 100.0 * (m.seconds - direct) / direct);
    }
    table.add_row({(m.name + " [" + m.engine + "]").c_str(), buf[0], buf[1], buf[2],
                   buf[3], buf[4], buf[5], vs});
  }
  std::printf("%s\n", table.render().c_str());

  // -- Greppable lines (CI bench-smoke) --------------------------------------
  std::printf("BENCH_RESTORE_DIRECT %.1f MiB/s\n", total_mib / direct);
  for (const auto& m : modes) {
    if (m.seconds < 0) continue;
    const double hit_rate = m.prefetch_issued > 0
        ? static_cast<double>(m.prefetch_hits) / static_cast<double>(m.prefetch_issued)
        : 0.0;
    std::printf("BENCH_RESTORE_%s %.1f MiB/s ttfb_ms=%.3f hit_rate=%.2f "
                "sync_preads=%llu inflight_max=%llu engine=%s\n",
                m.key.c_str(), m.mib_s, m.ttfb_ms, hit_rate,
                static_cast<unsigned long long>(m.sync_preads),
                static_cast<unsigned long long>(m.inflight_max), m.engine.c_str());
  }

  // -- Structural gates ------------------------------------------------------
  const ModeStats& sync_ra = modes[0];
  const ModeStats& sync_off = modes[1];
  const ModeStats& uring_ra = modes[2];
  const ModeStats& uring_off = modes[3];
  const ModeStats& posix_ra = modes[4];
  bool ok = true;
  // Readahead must actually absorb blocking preads on a sequential scan.
  if (sync_ra.prefetch_hits == 0 || sync_ra.sync_preads >= sync_off.sync_preads) ok = false;
  if (uring_ra.prefetch_hits == 0 || uring_ra.sync_preads >= uring_off.sync_preads) ok = false;
  // A real ring (posix backend, raw fds, uring actually running) must
  // keep more than one chunk read in flight.
  if (posix_ra.seconds > 0 && posix_ra.engine == "uring" && posix_ra.inflight_max <= 1) {
    ok = false;
  }
  if (posix_ra.seconds > 0 && posix_ra.prefetch_hits == 0) ok = false;
  // Readahead off == pure passthrough: one backend pread per app read,
  // zero prefetch traffic (the structural <=overhead proof).
  const bool off_passthrough =
      sync_off.prefetch_issued == 0 && sync_off.sync_preads == sync_off.ops &&
      uring_off.prefetch_issued == 0 && uring_off.sync_preads == uring_off.ops;
  if (!off_passthrough) ok = false;
  std::printf("BENCH_RESTORE_STRUCTURAL ra_hits=%llu ra_sync_preads=%llu "
              "off_sync_preads=%llu ring_inflight_max=%llu ring_engine=%s "
              "off_passthrough=%s verdict=%s\n",
              static_cast<unsigned long long>(sync_ra.prefetch_hits),
              static_cast<unsigned long long>(sync_ra.sync_preads),
              static_cast<unsigned long long>(sync_off.sync_preads),
              static_cast<unsigned long long>(posix_ra.inflight_max),
              posix_ra.seconds > 0 ? posix_ra.engine.c_str() : "skipped",
              off_passthrough ? "yes" : "no", ok ? "PASS" : "FAIL");

  // Wall-clock guards: informational by default, hard under STRICT.
  const double off_overhead = 100.0 * (sync_off.seconds - direct) / direct;
  const bool off_guard = off_overhead <= 5.0;
  std::printf("BENCH_RESTORE_OFF_OVERHEAD %+.1f%% (guard <=5%%: %s)\n", off_overhead,
              off_guard ? "PASS" : "SOFT-FAIL");
  const double best_ra = std::min(sync_ra.seconds, uring_ra.seconds);
  const double best_off = std::min(sync_off.seconds, uring_off.seconds);
  std::printf("BENCH_RESTORE_SPEEDUP %.2fx readahead vs none (wall clock, %s)\n",
              best_off / best_ra, strict ? "gated" : "informational");
  if (strict && (!off_guard || best_ra >= best_off)) ok = false;

  // -- JSON artifact ---------------------------------------------------------
  if (std::FILE* f = std::fopen("BENCH_RESTORE.json", "w")) {
    std::fprintf(f,
                 "{\n  \"ranks\": %u,\n  \"image_bytes\": %llu,\n"
                 "  \"throttle_bw_mib_s\": %.1f,\n  \"throttle_per_op_us\": %lld,\n"
                 "  \"direct\": {\"seconds\": %.6f, \"mib_s\": %.1f},\n  \"modes\": [\n",
                 ranks, static_cast<unsigned long long>(image_bytes), throttle_bw / MiB,
                 static_cast<long long>(throttle_op.count()), direct, total_mib / direct);
    std::vector<std::size_t> printed;
    for (std::size_t i = 0; i < modes.size(); ++i) {
      if (modes[i].seconds >= 0) printed.push_back(i);
    }
    for (std::size_t p = 0; p < printed.size(); ++p) {
      const std::size_t i = printed[p];
      const auto& m = modes[i];
      std::fprintf(
          f,
          "    {\"name\": \"%s\", \"engine\": \"%s\", \"readahead\": %s,\n"
          "     \"seconds\": %.6f, \"mib_s\": %.1f, \"ttfb_ms\": %.3f,\n"
          "     \"ops\": %llu, \"bytes\": %llu, \"prefetch_issued\": %llu,\n"
          "     \"prefetch_hits\": %llu, \"prefetch_wasted\": %llu,\n"
          "     \"sync_preads\": %llu, \"inflight_max\": %llu}%s\n",
          m.name.c_str(), m.engine.c_str(), readaheads[i] ? "true" : "false", m.seconds,
          m.mib_s, m.ttfb_ms, static_cast<unsigned long long>(m.ops),
          static_cast<unsigned long long>(m.bytes),
          static_cast<unsigned long long>(m.prefetch_issued),
          static_cast<unsigned long long>(m.prefetch_hits),
          static_cast<unsigned long long>(m.prefetch_wasted),
          static_cast<unsigned long long>(m.sync_preads),
          static_cast<unsigned long long>(m.inflight_max),
          p + 1 < printed.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"structural_pass\": %s,\n  \"off_overhead_pct\": %.1f\n}\n",
                 ok ? "true" : "false", off_overhead);
    std::fclose(f);
    std::printf("wrote BENCH_RESTORE.json\n");
  }

  if (!ok) {
    std::printf("BENCH_RESTORE verdict: FAIL\n");
    return 1;
  }
  std::printf("BENCH_RESTORE verdict: PASS\n");
  return 0;
}
