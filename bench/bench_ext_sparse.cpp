// Extension experiment: vmadump-style zero-page elision through CRFS.
//
// The paper's reference [10] (Plank et al., "Memory exclusion") is the
// classic observation that much of a process image does not need to be
// written. BLCR's vmadump skips zero pages; our dense writer (the paper's
// profiled mode) does not. This bench measures, on the REAL CRFS
// implementation, what elision buys on top of aggregation — and what it
// costs (sparse streams break pure sequentiality, so CRFS flushes more
// partial chunks).
#include <cstdio>

#include "backend/mem_backend.h"
#include "blcr/checkpoint_writer.h"
#include "blcr/process_image.h"
#include "blcr/sinks.h"
#include "common/table.h"
#include "common/units.h"
#include "common/wall_clock.h"
#include "crfs/file.h"
#include "crfs/fuse_shim.h"

using namespace crfs;

namespace {

struct RunResult {
  double seconds = 0;
  std::uint64_t backend_bytes = 0;
  std::uint64_t partial_flushes = 0;
  std::uint64_t full_flushes = 0;
};

RunResult run(unsigned ranks, std::uint64_t image_bytes, bool sparse,
              std::uint64_t min_run = 64 * KiB) {
  auto mem = std::make_shared<MemBackend>();
  auto fs = Crfs::mount(mem, Config{});
  FuseShim shim(*fs.value(), FuseOptions{.big_writes = true});

  const Stopwatch sw;
  for (unsigned r = 0; r < ranks; ++r) {
    const auto img = blcr::ProcessImage::synthesize(r, image_bytes, 77 + r);
    auto file = File::open(shim, "rank" + std::to_string(r) + ".ckpt",
                           {.create = true, .truncate = true, .write = true});
    if (!file.ok()) return {};
    blcr::CrfsFileSink sink(file.value());
    (void)blcr::CheckpointWriter::write_image(
        img, sink, nullptr, {.elide_zero_pages = sparse, .min_skip_run = min_run});
    (void)file.value().close();
  }
  RunResult out;
  out.seconds = sw.elapsed_seconds();
  out.backend_bytes = mem->total_pwritten_bytes();
  const MountStats::Snapshot stats = fs.value()->stats().snapshot();
  out.partial_flushes = stats.partial_flushes;
  out.full_flushes = stats.full_flushes;
  return out;
}

}  // namespace

int main() {
  constexpr unsigned kRanks = 4;
  constexpr std::uint64_t kImage = 32 * MiB;

  std::printf("=== Extension: zero-page elision (memory exclusion, paper ref [10]) "
              "===\n");
  std::printf("%u ranks x %s images through real CRFS (paper defaults), dense vs "
              "sparse.\n\n",
              kRanks, format_bytes(kImage).c_str());

  const auto dense = run(kRanks, kImage, false);
  const auto sparse_all = run(kRanks, kImage, true, 4 * KiB);
  const auto sparse = run(kRanks, kImage, true, 64 * KiB);

  TextTable table({"Mode", "Wall time", "Backend bytes", "Full flushes",
                   "Partial flushes"});
  char buf[2][32];
  auto row = [&](const char* name, const RunResult& r) {
    std::snprintf(buf[0], sizeof(buf[0]), "%.3f s", r.seconds);
    table.add_row({name, buf[0], format_bytes(r.backend_bytes),
                   std::to_string(r.full_flushes), std::to_string(r.partial_flushes)});
  };
  row("dense (paper mode)", dense);
  row("sparse, skip >= 4K", sparse_all);
  row("sparse, skip >= 64K", sparse);
  std::printf("%s\n", table.render().c_str());

  std::printf(
      "Bytes saved: %.1f%% (>=4K skips) / %.1f%% (>=64K skips). Every skip\n"
      "breaks stream contiguity — a partial chunk flush in CRFS — so eliding\n"
      "single pages shreds aggregation (%llu partial flushes); the 64K\n"
      "threshold keeps nearly all the byte savings while flushing only %llu\n"
      "partials. Elision trades aggregation quality for volume: favourable\n"
      "when the backend is volume-bound (class D), irrelevant when it is\n"
      "cache-bound (B/C).\n",
      100.0 * (1.0 - static_cast<double>(sparse_all.backend_bytes) /
                         static_cast<double>(dense.backend_bytes)),
      100.0 * (1.0 - static_cast<double>(sparse.backend_bytes) /
                         static_cast<double>(dense.backend_bytes)),
      static_cast<unsigned long long>(sparse_all.partial_flushes),
      static_cast<unsigned long long>(sparse.partial_flushes));
  return 0;
}
