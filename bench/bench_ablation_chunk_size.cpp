// Ablation A3: chunk size. The paper fixes 4 MB after Fig 5 ("larger
// chunk size is generally more favorable for the underlying filesystems
// to exhibit full potentials"). This bench shows the backend-side effect
// Fig 5 could not (it discarded chunks): DES checkpoint time vs chunk
// size on ext3 (seek amortisation) and Lustre (RPC efficiency), with the
// pool held at 4 chunks.
#include <cstdio>

#include "common/table.h"
#include "common/units.h"
#include "sim/experiment.h"

using namespace crfs;

namespace {

double run(sim::BackendKind backend, std::size_t chunk, mpi::LuClass cls) {
  sim::ExperimentConfig cfg;
  cfg.lu_class = cls;
  cfg.backend = backend;
  cfg.mode = sim::FsMode::kCrfs;
  cfg.crfs_config.chunk_size = chunk;
  cfg.crfs_config.pool_size = 4 * chunk;  // constant pipeline depth
  return sim::run_experiment(cfg).mean_rank_seconds;
}

}  // namespace

int main() {
  std::printf("=== Ablation A3: Chunk Size (paper fixes 4 MB, pool = 4 chunks) ===\n\n");

  TextTable table({"Chunk", "ext3 LU.C", "ext3 LU.D", "Lustre LU.C", "Lustre LU.D"});
  char buf[32];
  for (const std::size_t chunk :
       {128 * KiB, 256 * KiB, 512 * KiB, 1 * MiB, 2 * MiB, 4 * MiB, 8 * MiB}) {
    std::vector<std::string> row{format_bytes(chunk)};
    for (const auto& [backend, cls] :
         {std::pair{sim::BackendKind::kExt3, mpi::LuClass::kC},
          std::pair{sim::BackendKind::kExt3, mpi::LuClass::kD},
          std::pair{sim::BackendKind::kLustre, mpi::LuClass::kC},
          std::pair{sim::BackendKind::kLustre, mpi::LuClass::kD}}) {
      std::snprintf(buf, sizeof(buf), "%.2f s", run(backend, chunk, cls));
      row.push_back(buf);
    }
    table.add_row(row);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Finding: backend-side checkpoint time is nearly flat in chunk size —\n"
              "CRFS chunks land contiguously, so the backend page cache merges them\n"
              "back into large writeback runs regardless of the chunk granularity.\n"
              "The chunk size that matters is on the aggregation side (Fig 5 and\n"
              "ablation A1, measured on the real implementation), plus a mild >= 4 MB\n"
              "edge here from fewer per-write crossings. This supports the paper's\n"
              "choice of a large (4 MB) chunk without contradicting it.\n");
  return 0;
}
