// Shared driver for the Fig 6 / Fig 7 / Fig 8 benches: one MPI stack,
// checkpoint writing time across {ext3, Lustre, NFS} x {B, C, D}, native
// vs CRFS, printed as paper-vs-measured plus the paper's bar layout.
#pragma once

#include <cstdio>
#include <span>
#include <string>

#include "bench/paper_data.h"
#include "common/table.h"
#include "common/units.h"

namespace crfs::bench {

inline int run_fig678(mpi::Stack stack, const char* figure,
                      std::span<const PaperCell> paper) {
  std::printf("=== %s: Checkpoint Writing Time with %s (16 nodes x 8 ppn, 128 procs) ===\n",
              figure, mpi::stack_name(stack));
  std::printf("DES reproduction; paper values in parentheses. Lower is better.\n\n");

  TextTable table({"Class", "Backend", "Native", "(paper)", "CRFS", "(paper)",
                   "Speedup", "(paper)"});
  mpi::LuClass last_cls = mpi::LuClass::kB;
  bool first = true;

  for (const auto& cell : paper) {
    if (!first && cell.cls != last_cls) table.add_rule();
    first = false;
    last_cls = cell.cls;

    const auto got = sim::run_cell(stack, cell.cls, cell.backend);
    auto fmt = [](double v) { return v < 0 ? std::string("n/a") : format_seconds(v); };
    auto speedup = [](double n, double c) {
      if (n < 0 || c <= 0) return std::string("n/a");
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%.1fx", n / c);
      return std::string(buf);
    };
    table.add_row({mpi::lu_class_name(cell.cls), sim::backend_name(cell.backend),
                   fmt(got.native_seconds), fmt(cell.native_s), fmt(got.crfs_seconds),
                   fmt(cell.crfs_s), speedup(got.native_seconds, got.crfs_seconds),
                   speedup(cell.native_s, cell.crfs_s)});
  }
  std::printf("%s\n", table.render().c_str());

  // The paper's grouped-bar rendering, one group per class.
  for (const auto cls : {mpi::LuClass::kB, mpi::LuClass::kC, mpi::LuClass::kD}) {
    BarChart chart(std::string("  ") + mpi::lu_class_name(cls) + ".128 (" +
                       mpi::stack_name(stack) + ")",
                   "s");
    for (const auto& cell : paper) {
      if (cell.cls != cls) continue;
      const auto got = sim::run_cell(stack, cell.cls, cell.backend);
      chart.add(std::string(sim::backend_name(cell.backend)) + " native", got.native_seconds);
      chart.add(std::string(sim::backend_name(cell.backend)) + " CRFS  ", got.crfs_seconds);
      chart.add_gap();
    }
    std::printf("%s\n", chart.render().c_str());
  }
  return 0;
}

}  // namespace crfs::bench
