// Reproduces Fig 3: cumulative write time for each process (LU.C.64,
// native ext3). The paper observes per-process completion times spread
// from ~4 s to ~8 s because concurrent write streams contend in the VFS
// and the slowest process delays everyone.
#include <cstdio>

#include "common/stats.h"
#include "common/table.h"
#include "sim/experiment.h"

using namespace crfs;

int main() {
  std::printf("=== Figure 3: Cumulative Write Time per Process (LU.C.64, ext3, native) ===\n\n");

  sim::ExperimentConfig cfg;
  cfg.lu_class = mpi::LuClass::kC;
  cfg.nodes = 8;
  cfg.ppn = 8;
  cfg.backend = sim::BackendKind::kExt3;
  cfg.mode = sim::FsMode::kNative;
  cfg.record_writes = true;

  const auto result = sim::run_experiment(cfg);

  // One cumulative curve per process, as the figure plots.
  ScatterPlot plot("Cumulative write time vs write size (one '*' series per process)");
  plot.set_log_x(true);
  plot.set_axis_labels("write size (bytes)", "cumulative write time (s)");
  for (const auto& rec : result.profile.per_process()) {
    plot.add_series('*', rec.cumulative_time_by_size());
  }
  std::printf("%s\n", plot.render().c_str());

  Samples completion;
  for (double t : result.profile.completion_times()) completion.add(t);
  std::printf("Per-process completion: min %.1f s, median %.1f s, max %.1f s, "
              "spread %.2fx\n",
              completion.min(), completion.median(), completion.max(),
              completion.max() / completion.min());
  std::printf("Paper: completion times range from ~4 s to ~8 s (2x spread); the\n"
              "checkpoint ends only when the slowest process finishes.\n");
  return 0;
}
