// Reproduces Fig 8: checkpoint writing time with OpenMPI across ext3,
// Lustre, NFS. The paper's native-Lustre LU.C.128 run always failed
// ("we could not get the result"); ours runs, so the measured column has
// a value where the paper column prints n/a.
#include "bench/figs678_common.h"

int main() {
  return crfs::bench::run_fig678(crfs::mpi::Stack::kOpenMpi, "Figure 8",
                                 crfs::bench::kFig8Openmpi);
}
