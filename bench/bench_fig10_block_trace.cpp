// Reproduces Fig 10: block-IO-layer trace on one node during checkpoint
// writing of LU.C.64 to ext3 — native (high randomness, many head seeks)
// vs CRFS (relatively sequential). The DES disk records exactly what
// blktrace captured in the paper.
#include <cstdio>

#include "common/table.h"
#include "common/units.h"
#include "sim/experiment.h"

using namespace crfs;

namespace {

sim::ExperimentResult run(sim::FsMode mode) {
  sim::ExperimentConfig cfg;
  cfg.lu_class = mpi::LuClass::kC;
  cfg.nodes = 8;
  cfg.ppn = 8;
  cfg.backend = sim::BackendKind::kExt3;
  cfg.mode = mode;
  return sim::run_experiment(cfg);
}

void show(const char* title, const sim::ExperimentResult& r) {
  ScatterPlot plot(title);
  plot.set_axis_labels("time (s)", "disk offset (MB)");
  plot.add_series('#', r.disk_scatter);
  std::printf("%s\n", plot.render().c_str());

  const auto& s = r.disk_summary;
  std::printf("  requests %llu | seeks %llu | sequential fraction %.2f | "
              "avg request %s | mean seek distance %s\n\n",
              static_cast<unsigned long long>(s.requests),
              static_cast<unsigned long long>(s.seeks), s.sequential_fraction,
              format_bytes(s.requests ? s.bytes / s.requests : 0).c_str(),
              format_bytes(static_cast<std::uint64_t>(s.seek_distance_bytes)).c_str());
}

}  // namespace

int main() {
  std::printf("=== Figure 10: Block IO Layer Trace on One Node "
              "(LU.C.64, ext3) ===\n\n");

  const auto native = run(sim::FsMode::kNative);
  const auto crfs = run(sim::FsMode::kCrfs);

  show("(a) Write to ext3 (native)", native);
  show("(b) Write to ext3 + CRFS", crfs);

  TextTable table({"", "Native", "CRFS", "Ratio"});
  char buf[32];
  auto u64 = [&](std::uint64_t v) { return std::to_string(v); };
  std::snprintf(buf, sizeof(buf), "%.1fx",
                static_cast<double>(native.disk_summary.requests) /
                    static_cast<double>(crfs.disk_summary.requests));
  table.add_row({"disk requests", u64(native.disk_summary.requests),
                 u64(crfs.disk_summary.requests), buf});
  std::snprintf(buf, sizeof(buf), "%.1fx",
                static_cast<double>(native.disk_summary.seeks) /
                    static_cast<double>(crfs.disk_summary.seeks ? crfs.disk_summary.seeks : 1));
  table.add_row({"head seeks", u64(native.disk_summary.seeks),
                 u64(crfs.disk_summary.seeks), buf});
  table.add_row({"avg request", format_bytes(native.disk_summary.bytes /
                                             native.disk_summary.requests),
                 format_bytes(crfs.disk_summary.bytes / crfs.disk_summary.requests), ""});
  std::printf("%s\n", table.render().c_str());
  std::printf("Paper: native shows 'a high degree of randomness ... a lot of disk head\n"
              "seeks'; CRFS 'coalesces the concurrent write requests and performs\n"
              "relatively sequential writes'.\n");
  return 0;
}
