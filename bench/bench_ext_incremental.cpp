// Extension experiment: incremental (delta) checkpoints through CRFS.
//
// Periodic checkpointing rewrites mostly-unchanged images every epoch.
// This bench measures, on the real implementation, the bytes and time a
// delta epoch costs as a function of how much of the process changed
// between epochs — the knob that decides when delta checkpointing pays.
#include <cstdio>

#include "backend/mem_backend.h"
#include "blcr/incremental.h"
#include "blcr/sinks.h"
#include "common/table.h"
#include "common/units.h"
#include "common/wall_clock.h"
#include "crfs/file.h"
#include "crfs/fuse_shim.h"

using namespace crfs;

int main() {
  constexpr std::uint64_t kImage = 64 * MiB;
  std::printf("=== Extension: incremental checkpoints (delta epochs) ===\n");
  std::printf("one rank, %s image, epoch N+1 written as a delta against epoch N,\n"
              "through real CRFS (paper defaults). Sweep: fraction of VMAs changed.\n\n",
              format_bytes(kImage).c_str());

  const auto base = blcr::ProcessImage::synthesize(1, kImage, 7);
  const auto parent_digest = blcr::digest_image(base);

  // Baseline: a full epoch.
  double full_seconds = 0;
  std::uint64_t full_bytes = 0;
  {
    auto mem = std::make_shared<MemBackend>();
    auto fs = Crfs::mount(mem, Config{});
    FuseShim shim(*fs.value(), FuseOptions{.big_writes = true});
    const Stopwatch sw;
    auto f = File::open(shim, "full", {.create = true, .truncate = true, .write = true});
    blcr::CrfsFileSink sink(f.value());
    (void)blcr::CheckpointWriter::write_image(base, sink);
    (void)f.value().close();
    full_seconds = sw.elapsed_seconds();
    full_bytes = mem->total_pwritten_bytes();
  }

  TextTable table({"Changed VMAs", "Delta bytes", "vs full", "Wall time", "vs full"});
  char buf[4][32];
  for (const double fraction : {0.0, 0.05, 0.10, 0.25, 0.50, 1.0}) {
    const auto next = blcr::mutate_image(base, fraction, 1000 + static_cast<int>(fraction * 100));
    auto mem = std::make_shared<MemBackend>();
    auto fs = Crfs::mount(mem, Config{});
    FuseShim shim(*fs.value(), FuseOptions{.big_writes = true});
    const Stopwatch sw;
    auto f = File::open(shim, "delta", {.create = true, .truncate = true, .write = true});
    blcr::CrfsFileSink sink(f.value());
    auto stats = blcr::write_delta_image(next, parent_digest, sink);
    (void)f.value().close();
    const double seconds = sw.elapsed_seconds();
    if (!stats.ok()) continue;

    std::snprintf(buf[0], sizeof(buf[0]), "%.0f%% (%u/%zu)", fraction * 100,
                  stats.value().changed_vmas, next.vmas.size());
    std::snprintf(buf[1], sizeof(buf[1]), "%.1f%%",
                  100.0 * static_cast<double>(mem->total_pwritten_bytes()) /
                      static_cast<double>(full_bytes));
    std::snprintf(buf[2], sizeof(buf[2]), "%.3f s", seconds);
    std::snprintf(buf[3], sizeof(buf[3]), "%.0f%%", 100.0 * seconds / full_seconds);
    table.add_row({buf[0], format_bytes(mem->total_pwritten_bytes()), buf[1], buf[2],
                   buf[3]});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Full epoch baseline: %s in %.3f s. Delta cost scales with the\n"
              "changed fraction (CRC computation over unchanged VMAs is the floor);\n"
              "restart composes delta over parent with end-to-end CRC verification\n"
              "(see test_incremental). Orthogonal to, and stackable with, CRFS\n"
              "aggregation and zero-page elision.\n",
              format_bytes(full_bytes).c_str(), full_seconds);
  return 0;
}
