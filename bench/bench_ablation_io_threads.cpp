// Ablation A1: IO thread count. The paper states "after extensive
// experimental runs we find that 4 IO threads generally yield the best
// throughput for most of the situations" but omits the study for space.
// This bench reconstructs it on both layers:
//   (a) real CRFS raw aggregation bandwidth vs thread count (NullBackend)
//   (b) DES checkpoint time vs thread count on ext3 and Lustre, where the
//       throttling trade-off the paper describes actually lives ("too
//       many IO threads tend to generate high contention ... too few
//       cannot unleash the full potential").
#include <cstdio>
#include <thread>
#include <vector>

#include "backend/null_backend.h"
#include "common/table.h"
#include "common/units.h"
#include "common/wall_clock.h"
#include "crfs/crfs.h"
#include "crfs/fuse_shim.h"
#include "sim/experiment.h"

using namespace crfs;

namespace {

double raw_bandwidth(unsigned io_threads) {
  auto backend = std::make_shared<NullBackend>();
  auto fs = Crfs::mount(backend, Config{.chunk_size = 4 * MiB, .pool_size = 16 * MiB,
                                        .io_threads = io_threads});
  if (!fs.ok()) return 0.0;
  FuseShim shim(*fs.value(), FuseOptions{});

  constexpr int kWriters = 8;
  constexpr std::size_t kPerWriter = 32 * MiB;
  const Stopwatch sw;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      auto h = shim.open("w" + std::to_string(w),
                         {.create = true, .truncate = true, .write = true});
      if (!h.ok()) return;
      std::vector<std::byte> buf(1 * MiB, std::byte{1});
      for (std::size_t off = 0; off < kPerWriter; off += buf.size()) {
        (void)shim.write(h.value(), buf, off);
      }
      (void)shim.close(h.value());
    });
  }
  for (auto& t : writers) t.join();
  return kWriters * static_cast<double>(kPerWriter) / sw.elapsed_seconds();
}

double sim_checkpoint(sim::BackendKind backend, unsigned io_threads) {
  sim::ExperimentConfig cfg;
  cfg.lu_class = mpi::LuClass::kD;
  cfg.backend = backend;
  cfg.mode = sim::FsMode::kCrfs;
  cfg.crfs_config.io_threads = io_threads;
  return sim::run_experiment(cfg).mean_rank_seconds;
}

}  // namespace

int main() {
  std::printf("=== Ablation A1: IO Thread Count (paper fixes 4) ===\n\n");

  TextTable table({"IO threads", "Raw agg (real)", "ext3 LU.D (DES)", "Lustre LU.D (DES)"});
  char buf[32];
  for (const unsigned threads : {1u, 2u, 4u, 8u, 16u}) {
    std::vector<std::string> row{std::to_string(threads)};
    std::snprintf(buf, sizeof(buf), "%.0f MB/s", raw_bandwidth(threads) / 1e6);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.1f s", sim_checkpoint(sim::BackendKind::kExt3, threads));
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.1f s", sim_checkpoint(sim::BackendKind::kLustre, threads));
    row.push_back(buf);
    table.add_row(row);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Finding: with a 16 MB pool (4 chunks) the pipeline saturates by ~4\n"
      "threads everywhere — consistent with the paper's choice. The paper's\n"
      "claimed penalty for MANY threads ('too many IO threads tend to generate\n"
      "high contention when they concurrently write to backend filesystems')\n"
      "does not reproduce in either layer here: the real path is memory-bound\n"
      "on this host, and the DES backends charge no super-linear cost for\n"
      "extra concurrent streams from one node. Reproducing that penalty would\n"
      "need the paper's omitted per-thread-count data to calibrate against.\n");
  return 0;
}
