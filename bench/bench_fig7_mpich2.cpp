// Reproduces Fig 7: checkpoint writing time with MPICH2 (TCP transport;
// smaller images than the IB stacks) across ext3, Lustre, NFS.
#include "bench/figs678_common.h"

int main() {
  return crfs::bench::run_fig678(crfs::mpi::Stack::kMpich2, "Figure 7",
                                 crfs::bench::kFig7Mpich2);
}
