// Restart performance (paper §V-F): "CRFS forwards every read request to
// the back-end filesystem, and does not impose any additional overhead on
// file reads ... we did not observe any noticeable improvement in the
// application restart time when CRFS is mounted."
//
// Measured on the REAL implementation: checkpoint N rank images through
// CRFS into an in-memory backend, then restart them three ways —
// (a) directly from the backend (no CRFS), (b) through a CRFS mount,
// (c) through CRFS without big_writes — verifying CRCs each time.
#include <cstdio>

#include "backend/mem_backend.h"
#include "blcr/checkpoint_writer.h"
#include "blcr/process_image.h"
#include "blcr/restart_reader.h"
#include "blcr/sinks.h"
#include "common/table.h"
#include "common/units.h"
#include "common/wall_clock.h"
#include "crfs/file.h"
#include "crfs/fuse_shim.h"

using namespace crfs;

int main() {
  constexpr unsigned kRanks = 4;
  constexpr std::uint64_t kImage = 32 * MiB;

  std::printf("=== Restart Performance (paper §V-F) ===\n");
  std::printf("%u ranks x %s images; checkpoint through CRFS, restart three ways.\n\n",
              kRanks, format_bytes(kImage).c_str());

  auto mem = std::make_shared<MemBackend>();
  std::vector<std::uint64_t> crcs(kRanks);

  // Checkpoint through CRFS.
  {
    auto fs = Crfs::mount(mem, Config{});
    FuseShim shim(*fs.value(), FuseOptions{.big_writes = true});
    for (unsigned r = 0; r < kRanks; ++r) {
      const auto image = blcr::ProcessImage::synthesize(r, kImage, 7);
      auto file = File::open(shim, "rank" + std::to_string(r) + ".ckpt",
                             {.create = true, .truncate = true, .write = true});
      blcr::CrfsFileSink sink(file.value());
      crcs[r] = blcr::CheckpointWriter::write_image(image, sink).value();
      (void)file.value().close();
    }
  }

  auto restart_direct = [&]() -> double {
    const Stopwatch sw;
    for (unsigned r = 0; r < kRanks; ++r) {
      auto bf = mem->open_file("rank" + std::to_string(r) + ".ckpt",
                               {.create = false, .truncate = false, .write = false});
      blcr::BackendSource source(*mem, bf.value());
      auto restored = blcr::RestartReader::read_image(source);
      if (!restored.ok() || restored.value().payload_crc != crcs[r]) return -1;
      (void)mem->close_file(bf.value());
    }
    return sw.elapsed_seconds();
  };

  auto restart_via_crfs = [&](bool big_writes) -> double {
    auto fs = Crfs::mount(mem, Config{});
    FuseShim shim(*fs.value(), FuseOptions{.big_writes = big_writes});
    const Stopwatch sw;
    for (unsigned r = 0; r < kRanks; ++r) {
      auto file = File::open(shim, "rank" + std::to_string(r) + ".ckpt",
                             {.create = false, .truncate = false, .write = false});
      blcr::CrfsFileSource source(file.value());
      auto restored = blcr::RestartReader::read_image(source);
      if (!restored.ok() || restored.value().payload_crc != crcs[r]) return -1;
    }
    return sw.elapsed_seconds();
  };

  // Warm up, then measure each mode a few times and keep the median-ish.
  (void)restart_direct();
  TextTable table({"Restart path", "Time", "vs direct"});
  const double direct = restart_direct();
  const double via_crfs = restart_via_crfs(true);
  const double via_crfs_small = restart_via_crfs(false);
  char buf[2][32];
  auto add = [&](const char* name, double t) {
    if (t < 0) {
      table.add_row({name, "CRC FAILURE", ""});
      return;
    }
    std::snprintf(buf[0], sizeof(buf[0]), "%.3f s", t);
    std::snprintf(buf[1], sizeof(buf[1]), "%+.0f%%", 100.0 * (t - direct) / direct);
    table.add_row({name, buf[0], buf[1]});
  };
  add("direct from backend (no CRFS)", direct);
  add("through CRFS (big_writes)", via_crfs);
  add("through CRFS (4K requests)", via_crfs_small);
  std::printf("%s\n", table.render().c_str());
  std::printf("Expectation (paper): reads pass straight through, so restart through\n"
              "CRFS costs about the same as restarting from the backend directly —\n"
              "and the checkpoint files need no CRFS mount at all to be usable.\n");
  return 0;
}
