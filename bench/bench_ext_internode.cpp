// Extension experiment (paper §VII future work): "we plan to explore how
// CRFS can optimize inter-node concurrent IO writing to further reduce
// the IO contentions."
//
// Implementation: a cluster-wide admission token limiting how many nodes
// may run an NFS close-time flush concurrently. The single NFS server's
// seek-modelled disk rewards per-file-sequential request streams, so
// serializing the commit storm trades idle client time for server
// sequentiality. The sweep shows where that trade wins.
#include <cstdio>

#include "common/table.h"
#include "common/units.h"
#include "sim/experiment.h"

using namespace crfs;

namespace {

double run(mpi::LuClass cls, sim::FsMode mode, unsigned tokens) {
  sim::ExperimentConfig cfg;
  cfg.lu_class = cls;
  cfg.backend = sim::BackendKind::kNfs;
  cfg.mode = mode;
  cfg.cal.nfs_coordinated_flushers = tokens;
  return sim::run_experiment(cfg).mean_rank_seconds;
}

}  // namespace

int main() {
  std::printf("=== Extension: Inter-node Coordinated Flushing on NFS ===\n");
  std::printf("(the paper's stated future work, implemented as a cluster-wide\n"
              " admission token on close-time flushes; 16 nodes x 8 ppn)\n\n");

  TextTable table({"Concurrent flushers", "Native LU.B", "CRFS LU.B",
                   "Native LU.C", "CRFS LU.C"});
  char buf[32];
  for (const unsigned tokens : {0u, 16u, 8u, 4u, 2u, 1u}) {
    std::vector<std::string> row{tokens == 0 ? "unlimited (paper)" : std::to_string(tokens)};
    for (const auto& [cls, mode] :
         {std::pair{mpi::LuClass::kB, sim::FsMode::kNative},
          std::pair{mpi::LuClass::kB, sim::FsMode::kCrfs},
          std::pair{mpi::LuClass::kC, sim::FsMode::kNative},
          std::pair{mpi::LuClass::kC, sim::FsMode::kCrfs}}) {
      std::snprintf(buf, sizeof(buf), "%.1f s", run(cls, mode, tokens));
      row.push_back(buf);
    }
    table.add_row(row);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Reading: limiting concurrent flushers keeps the NFS server's request\n"
              "stream per-file sequential (fewer head seeks), which recovers much of\n"
              "the native commit-storm penalty and still helps CRFS — node-level\n"
              "aggregation and inter-node scheduling attack different contention.\n");
  return 0;
}
