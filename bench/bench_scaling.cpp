// Beyond-the-paper scaling projection: the paper evaluates 16 nodes (and
// up to 64 in the testbed); this bench projects CRFS's benefit as the
// cluster grows — where does node-level aggregation stop being enough on
// a shared backend?
//
// Fixed work per node (LU.D-like: 8 ranks x ~107 MB), nodes swept
// 8 -> 64, on the two shared backends (Lustre, NFS). ext3 is node-local,
// so its speedup is flat by construction and shown once as the control.
#include <cstdio>

#include "common/table.h"
#include "common/units.h"
#include "sim/experiment.h"

using namespace crfs;

namespace {

sim::CellResult cell_at(unsigned nodes, sim::BackendKind backend) {
  // Keep per-rank image constant (weak scaling): total procs scales with
  // nodes, so pick the class-D per-rank size by anchoring nprocs at
  // 16*8 regardless of the sweep point.
  sim::ExperimentConfig cfg;
  cfg.lu_class = mpi::LuClass::kD;
  cfg.nodes = nodes;
  cfg.ppn = 8;
  cfg.backend = backend;
  // Weak scaling: image size fixed to the 128-proc value by scaling the
  // problem through stack model anchored at 128.
  // (image_bytes_per_process uses total procs; at 64 nodes x 8 = 512 procs
  // the per-proc image would shrink. For weak scaling we want constant
  // per-node load, which 'nodes * ppn' at class D approximates well
  // enough above 16 nodes; the trend, not the absolute, is the point.)
  cfg.mode = sim::FsMode::kNative;
  sim::CellResult out;
  out.native_seconds = run_experiment(cfg).mean_rank_seconds;
  cfg.mode = sim::FsMode::kCrfs;
  out.crfs_seconds = run_experiment(cfg).mean_rank_seconds;
  return out;
}

}  // namespace

int main() {
  std::printf("=== Scaling projection: CRFS benefit vs cluster size "
              "(LU.D, 8 ppn) ===\n");
  std::printf("(beyond the paper's 16-node runs; its 64-node testbed was never\n"
              " used at full scale in the evaluation)\n\n");

  TextTable table({"Nodes", "Lustre native", "Lustre CRFS", "speedup",
                   "NFS native", "NFS CRFS", "speedup"});
  char buf[6][32];
  for (const unsigned nodes : {8u, 16u, 32u, 64u}) {
    const auto lustre = cell_at(nodes, sim::BackendKind::kLustre);
    const auto nfs = cell_at(nodes, sim::BackendKind::kNfs);
    std::snprintf(buf[0], sizeof(buf[0]), "%.1f s", lustre.native_seconds);
    std::snprintf(buf[1], sizeof(buf[1]), "%.1f s", lustre.crfs_seconds);
    std::snprintf(buf[2], sizeof(buf[2]), "%.2fx", lustre.speedup());
    std::snprintf(buf[3], sizeof(buf[3]), "%.1f s", nfs.native_seconds);
    std::snprintf(buf[4], sizeof(buf[4]), "%.1f s", nfs.crfs_seconds);
    std::snprintf(buf[5], sizeof(buf[5]), "%.2fx", nfs.speedup());
    table.add_row({std::to_string(nodes), buf[0], buf[1], buf[2], buf[3], buf[4],
                   buf[5]});
  }
  const auto ext3 = cell_at(16, sim::BackendKind::kExt3);
  std::printf("%s\n", table.render().c_str());
  std::printf("Control (node-local ext3, any size): native %.1f s, CRFS %.1f s "
              "(%.2fx) — flat by construction.\n\n",
              ext3.native_seconds, ext3.crfs_seconds, ext3.speedup());
  std::printf(
      "Reading: fixed problem size spread over more nodes shrinks each rank's\n"
      "image. On Lustre the speedup narrows (per-op client costs shrink with\n"
      "the images) but persists. On NFS, 64 nodes push per-node data below\n"
      "the client cache: native falls back into the commit-storm regime and\n"
      "degrades sharply, while CRFS's large sequential commits keep the\n"
      "server efficient — aggregation matters MORE at scale there. Either\n"
      "way node-level aggregation cannot add server bandwidth, which is why\n"
      "the paper's future work (inter-node coordination; bench_ext_internode)\n"
      "targets the server side next.\n");
  return 0;
}
