// Ablation A2: FUSE "big_writes". The paper enables it ("We enable the
// big writes option for FUSE to perform large writes to deliver full
// performance") without quantifying. This bench measures both layers:
// request amplification and throughput on the real CRFS, and checkpoint
// time in the DES, with 4 KB vs 128 KB kernel requests.
#include <cstdio>
#include <thread>
#include <vector>

#include "backend/null_backend.h"
#include "common/table.h"
#include "common/units.h"
#include "common/wall_clock.h"
#include "crfs/crfs.h"
#include "crfs/fuse_shim.h"
#include "sim/experiment.h"

using namespace crfs;

namespace {

struct RealResult {
  double bandwidth = 0;
  std::uint64_t requests = 0;
};

RealResult real_run(bool big_writes) {
  auto backend = std::make_shared<NullBackend>();
  auto fs = Crfs::mount(backend, Config{});
  FuseShim shim(*fs.value(), FuseOptions{.big_writes = big_writes});

  constexpr int kWriters = 4;
  constexpr std::size_t kPerWriter = 32 * MiB;
  const Stopwatch sw;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      auto h = shim.open("w" + std::to_string(w),
                         {.create = true, .truncate = true, .write = true});
      std::vector<std::byte> buf(1 * MiB, std::byte{1});
      for (std::size_t off = 0; off < kPerWriter; off += buf.size()) {
        (void)shim.write(h.value(), buf, off);
      }
      (void)shim.close(h.value());
    });
  }
  for (auto& t : writers) t.join();
  return {kWriters * static_cast<double>(kPerWriter) / sw.elapsed_seconds(),
          shim.requests_routed()};
}

double sim_run(bool big_writes, mpi::LuClass cls) {
  sim::ExperimentConfig cfg;
  cfg.lu_class = cls;
  cfg.backend = sim::BackendKind::kExt3;
  cfg.mode = sim::FsMode::kCrfs;
  cfg.fuse.big_writes = big_writes;
  return sim::run_experiment(cfg).mean_rank_seconds;
}

}  // namespace

int main() {
  std::printf("=== Ablation A2: FUSE big_writes (4 KB vs 128 KB kernel requests) ===\n\n");

  TextTable table({"big_writes", "Requests (real)", "Raw agg (real)",
                   "ext3 LU.B (DES)", "ext3 LU.C (DES)"});
  char buf[48];
  for (const bool on : {true, false}) {
    const auto real = real_run(on);
    std::vector<std::string> row{on ? "on (128K)" : "off (4K)"};
    std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(real.requests));
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.0f MB/s", real.bandwidth / 1e6);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.2f s", sim_run(on, mpi::LuClass::kB));
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.2f s", sim_run(on, mpi::LuClass::kC));
    row.push_back(buf);
    table.add_row(row);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Disabling big_writes amplifies kernel requests 32x for large writes;\n"
              "each request pays the user<->kernel crossing, so CRFS checkpoint time\n"
              "degrades accordingly — why the paper turns the option on.\n");
  return 0;
}
