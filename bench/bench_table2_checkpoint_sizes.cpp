// Reproduces Table II: checkpoint sizes of LU.{B,C,D}.128 under the three
// MPI stacks. The per-process sizes come from the stack model (anchored
// to the published table); the bench additionally writes one real rank
// image through CRFS for each cell to confirm the on-disk checkpoint file
// matches the modelled size (payload + format metadata).
#include <cstdio>

#include "backend/mem_backend.h"
#include "bench/paper_data.h"
#include "blcr/checkpoint_writer.h"
#include "blcr/process_image.h"
#include "blcr/sinks.h"
#include "common/table.h"
#include "common/units.h"
#include "crfs/file.h"
#include "crfs/fuse_shim.h"

using namespace crfs;

int main() {
  std::printf("=== Table II: Checkpoint Sizes (128 processes) ===\n");
  std::printf("Model values vs paper; 'on disk' is one rank image actually written "
              "through CRFS.\n\n");

  auto mem = std::make_shared<MemBackend>();
  auto fs = Crfs::mount(mem, Config{});
  if (!fs.ok()) return 1;
  FuseShim shim(*fs.value(), FuseOptions{});

  TextTable table({"Benchmark", "MPI Library", "Total (MB)", "(paper)",
                   "Per-proc (MB)", "(paper)", "On disk (MB)"});
  char buf[32];
  auto mb = [&](double v) {
    std::snprintf(buf, sizeof(buf), "%.1f", v);
    return std::string(buf);
  };

  mpi::LuClass last = mpi::LuClass::kB;
  bool first = true;
  for (const auto& row : bench::kTable2) {
    if (!first && row.cls != last) table.add_rule();
    first = false;
    last = row.cls;

    const std::uint64_t per_proc = mpi::image_bytes_per_process(row.stack, row.cls, 128);
    const std::uint64_t total = mpi::total_checkpoint_bytes(row.stack, row.cls, 128);

    // Write rank 0's image for this cell through CRFS and stat the file.
    const auto image = blcr::ProcessImage::synthesize(0, per_proc, 99);
    const std::string path = std::string(mpi::stack_name(row.stack)) + "_" +
                             mpi::lu_class_name(row.cls) + ".ckpt";
    double on_disk_mb = 0;
    auto file = File::open(shim, path, {.create = true, .truncate = true, .write = true});
    if (file.ok()) {
      blcr::CrfsFileSink sink(file.value());
      (void)blcr::CheckpointWriter::write_image(image, sink);
      (void)file.value().close();
      if (auto st = fs.value()->getattr(path); st.ok()) {
        on_disk_mb = static_cast<double>(st.value().size) / static_cast<double>(MiB);
      }
    }

    const std::string tag = mpi::benchmark_tag(row.cls, 128);
    const std::string lib =
        std::string(mpi::stack_name(row.stack)) + "-" + mpi::stack_transport(row.stack);
    table.add_row({tag, lib, mb(static_cast<double>(total) / static_cast<double>(MiB)),
                   mb(row.total_mb), mb(static_cast<double>(per_proc) / static_cast<double>(MiB)),
                   mb(row.per_process_mb), mb(on_disk_mb)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("IB stacks carry ~2.4 MB/proc more than TCP (channel memory), as the\n"
              "paper observes for MVAPICH2/OpenMPI vs MPICH2.\n");
  return 0;
}
