// Reproduces Fig 11: cumulative write time for each process — native ext3
// vs ext3+CRFS (LU.C.64). CRFS collapses the per-process completion-time
// variation, so all processes converge and the application resumes
// quickly after the checkpoint.
#include <cstdio>

#include "common/stats.h"
#include "common/table.h"
#include "sim/experiment.h"

using namespace crfs;

namespace {

sim::ExperimentResult run(sim::FsMode mode) {
  sim::ExperimentConfig cfg;
  cfg.lu_class = mpi::LuClass::kC;
  cfg.nodes = 8;
  cfg.ppn = 8;
  cfg.backend = sim::BackendKind::kExt3;
  cfg.mode = mode;
  cfg.record_writes = true;
  return sim::run_experiment(cfg);
}

}  // namespace

int main() {
  std::printf("=== Figure 11: Cumulative Write Time per Process "
              "(LU.C.64, ext3 vs ext3+CRFS) ===\n\n");

  const auto native = run(sim::FsMode::kNative);
  const auto crfs = run(sim::FsMode::kCrfs);

  ScatterPlot plot("'N' = native ext3 processes, 'C' = CRFS-over-ext3 processes");
  plot.set_log_x(true);
  plot.set_axis_labels("write size (bytes)", "cumulative write time (s)");
  for (const auto& rec : native.profile.per_process()) {
    plot.add_series('N', rec.cumulative_time_by_size());
  }
  for (const auto& rec : crfs.profile.per_process()) {
    plot.add_series('C', rec.cumulative_time_by_size());
  }
  std::printf("%s\n", plot.render().c_str());

  auto stats = [](const sim::ExperimentResult& r) {
    Samples s;
    for (double t : r.profile.completion_times()) s.add(t);
    return s;
  };
  Samples ns = stats(native), cs = stats(crfs);

  TextTable table({"", "min", "median", "max", "spread"});
  char buf[32];
  auto row = [&](const char* name, Samples& s) {
    std::vector<std::string> cells{name};
    for (double v : {s.min(), s.median(), s.max()}) {
      std::snprintf(buf, sizeof(buf), "%.2f s", v);
      cells.push_back(buf);
    }
    std::snprintf(buf, sizeof(buf), "%.2fx", s.max() / s.min());
    cells.push_back(buf);
    table.add_row(cells);
  };
  row("Native ext3", ns);
  row("CRFS over ext3", cs);
  std::printf("%s\n", table.render().c_str());
  std::printf("Paper: native spreads ~2x (4-8 s); with CRFS 'all processes converge\n"
              "and finish their writing at about the same time'.\n");
  return 0;
}
