// Reproduces Fig 6: checkpoint writing time with MVAPICH2 across ext3,
// Lustre, and NFS for LU classes B/C/D, native vs CRFS.
#include "bench/figs678_common.h"

int main() {
  return crfs::bench::run_fig678(crfs::mpi::Stack::kMvapich2, "Figure 6",
                                 crfs::bench::kFig6Mvapich2);
}
