// Ablation A4: google-benchmark microbenches for the CRFS core data
// structures — the per-operation costs that bound the aggregation path.
// After the benchmarks, a short instrumented checkpoint runs through the
// full stack and prints the obs registry's per-stage latency table
// (BENCH_OBS_* lines), the observability baseline for regression diffs.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <thread>

#include "backend/mem_backend.h"
#include "backend/null_backend.h"
#include "common/checksum.h"
#include "common/rng.h"
#include "common/units.h"
#include "crfs/buffer_pool.h"
#include "crfs/crfs.h"
#include "crfs/file_table.h"
#include "crfs/fuse_shim.h"
#include "crfs/work_queue.h"
#include "obs/metrics.h"

namespace crfs {
namespace {

void BM_BufferPoolAcquireRelease(benchmark::State& state) {
  BufferPool pool(16 * MiB, 4 * MiB);
  for (auto _ : state) {
    auto chunk = pool.try_acquire(0);
    benchmark::DoNotOptimize(chunk);
    pool.release(std::move(chunk));
  }
}
BENCHMARK(BM_BufferPoolAcquireRelease);

void BM_ChunkAppend(benchmark::State& state) {
  const auto piece = static_cast<std::size_t>(state.range(0));
  Chunk chunk(4 * MiB);
  std::vector<std::byte> data(piece, std::byte{7});
  for (auto _ : state) {
    if (chunk.remaining() < piece) chunk.reset(0);
    benchmark::DoNotOptimize(chunk.append(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(piece));
}
BENCHMARK(BM_ChunkAppend)->Arg(64)->Arg(4 * 1024)->Arg(64 * 1024)->Arg(1024 * 1024);

void BM_WorkQueuePushPop(benchmark::State& state) {
  WorkQueue queue;
  auto entry = std::make_shared<FileEntry>("bench", 1);
  for (auto _ : state) {
    auto chunk = std::make_unique<Chunk>(4096);
    chunk->reset(0);
    queue.push(WriteJob{entry, std::move(chunk)});
    auto job = queue.pop();
    benchmark::DoNotOptimize(job);
  }
}
BENCHMARK(BM_WorkQueuePushPop);

void BM_FileTableFindOrCreate(benchmark::State& state) {
  FileTable table;
  int i = 0;
  for (auto _ : state) {
    const std::string path = "f" + std::to_string(i++ % 64);
    auto entry = table.find_or_create(path, [&]() -> Result<std::shared_ptr<FileEntry>> {
      return std::make_shared<FileEntry>(path, 1);
    });
    benchmark::DoNotOptimize(entry);
  }
}
BENCHMARK(BM_FileTableFindOrCreate);

void BM_Crc64(benchmark::State& state) {
  std::vector<std::byte> data(static_cast<std::size_t>(state.range(0)));
  Rng rng(1);
  for (auto& b : data) b = static_cast<std::byte>(rng.next_u64());
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc64::of(data.data(), data.size()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_Crc64)->Arg(4 * 1024)->Arg(1024 * 1024);

// End-to-end single-writer aggregation throughput through the full stack
// (FuseShim -> Crfs -> NullBackend), the per-stream ceiling of Fig 5.
void BM_CrfsWritePath(benchmark::State& state) {
  const auto write_size = static_cast<std::size_t>(state.range(0));
  auto backend = std::make_shared<NullBackend>();
  auto fs = Crfs::mount(backend, Config{});
  FuseShim shim(*fs.value(), FuseOptions{});
  auto h = shim.open("stream", {.create = true, .truncate = true, .write = true});
  std::vector<std::byte> buf(write_size, std::byte{3});
  std::uint64_t offset = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(shim.write(h.value(), buf, offset).ok());
    offset += write_size;
  }
  (void)shim.close(h.value());
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(write_size));
}
BENCHMARK(BM_CrfsWritePath)->Arg(64)->Arg(8 * 1024)->Arg(128 * 1024)->Arg(1024 * 1024);

// Write-path cost against a real storing backend (MemBackend), isolating
// the extra copy CRFS pays versus the discard path.
void BM_CrfsWritePathStoring(benchmark::State& state) {
  auto backend = std::make_shared<MemBackend>();
  auto fs = Crfs::mount(backend, Config{.chunk_size = 1 * MiB, .pool_size = 8 * MiB});
  FuseShim shim(*fs.value(), FuseOptions{});
  auto h = shim.open("stream", {.create = true, .truncate = true, .write = true});
  std::vector<std::byte> buf(128 * 1024, std::byte{3});
  std::uint64_t offset = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(shim.write(h.value(), buf, offset).ok());
    offset += buf.size();
    if (offset >= 256 * MiB) offset = 0;  // wrap: bounds the backend footprint
  }
  (void)shim.close(h.value());
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(buf.size()));
}
BENCHMARK(BM_CrfsWritePathStoring);

// Per-stage latency baseline: run a fixed multi-writer checkpoint through
// FuseShim -> Crfs -> MemBackend, then print the registry's histogram
// table. One BENCH_OBS_* line per stage gives copy / pool-wait /
// queue-wait / pwrite / drain percentiles in a greppable form.
void report_stage_latencies() {
  Config cfg;
  cfg.chunk_size = 1 * MiB;
  cfg.pool_size = 8 * MiB;
  cfg.io_threads = 2;
  auto fs = Crfs::mount(std::make_shared<MemBackend>(), cfg);
  if (!fs.ok()) return;
  FuseShim shim(*fs.value(), FuseOptions{});

  constexpr int kWriters = 4;
  constexpr std::size_t kPerWriter = 64 * MiB;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      auto h = shim.open("bench_obs_rank" + std::to_string(w),
                         {.create = true, .truncate = true, .write = true});
      if (!h.ok()) return;
      std::vector<std::byte> buf(128 * KiB, std::byte{9});
      for (std::size_t off = 0; off < kPerWriter; off += buf.size()) {
        (void)shim.write(h.value(), buf, off);
      }
      (void)shim.fsync(h.value());
      (void)shim.close(h.value());
    });
  }
  for (auto& t : writers) t.join();

  std::printf("\n-- per-stage latency baseline (%d writers x %zu MiB) --\n",
              kWriters, kPerWriter / MiB);
  const auto snap = fs.value()->metrics().snapshot();
  for (const auto& [name, h] : snap.histograms) {
    if (h.count == 0) continue;
    std::printf("BENCH_OBS_%s count=%llu p50=%s p95=%s p99=%s max=%s\n",
                name.c_str(), static_cast<unsigned long long>(h.count),
                obs::format_ns(static_cast<std::uint64_t>(h.p50())).c_str(),
                obs::format_ns(static_cast<std::uint64_t>(h.p95())).c_str(),
                obs::format_ns(static_cast<std::uint64_t>(h.p99())).c_str(),
                obs::format_ns(h.max).c_str());
  }
}

// Write path with the live sampler ticking in the background at the
// given period (arg in ms; 0 = sampler off). The sampler only touches
// the registry snapshot mutex from its own thread, so the expected delta
// versus BM_CrfsWritePath is noise — this benchmark is the regression
// guard for that claim (docs/OBSERVABILITY.md budgets it at <= 5%).
void BM_CrfsWritePathSampled(benchmark::State& state) {
  Config cfg;
  cfg.sample_ms = static_cast<unsigned>(state.range(0));
  auto fs = Crfs::mount(std::make_shared<NullBackend>(), cfg);
  FuseShim shim(*fs.value(), FuseOptions{});
  auto h = shim.open("stream", {.create = true, .truncate = true, .write = true});
  std::vector<std::byte> buf(128 * 1024, std::byte{3});
  std::uint64_t offset = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(shim.write(h.value(), buf, offset).ok());
    offset += buf.size();
  }
  (void)shim.close(h.value());
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(buf.size()));
}
BENCHMARK(BM_CrfsWritePathSampled)->Arg(0)->Arg(10)->Arg(1);

// BM_CrfsWritePath's A/B twin with the epoch ledger off (mount option
// `no_epochs`). BM_CrfsWritePath itself runs with the default config, so
// epoch attribution (~3 relaxed fetch_adds per write) is already in its
// numbers; diffing against this variant isolates the ledger's hot-path
// cost. The end-to-end budget is enforced by report_ledger_overhead().
void BM_CrfsWritePathNoEpochs(benchmark::State& state) {
  const auto write_size = static_cast<std::size_t>(state.range(0));
  Config cfg;
  cfg.epoch_tracking = false;
  auto fs = Crfs::mount(std::make_shared<NullBackend>(), cfg);
  FuseShim shim(*fs.value(), FuseOptions{});
  auto h = shim.open("stream", {.create = true, .truncate = true, .write = true});
  std::vector<std::byte> buf(write_size, std::byte{3});
  std::uint64_t offset = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(shim.write(h.value(), buf, offset).ok());
    offset += write_size;
  }
  (void)shim.close(h.value());
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(write_size));
}
BENCHMARK(BM_CrfsWritePathNoEpochs)->Arg(128 * 1024)->Arg(1024 * 1024);

// Sampler overhead measurement: the same fixed multi-writer checkpoint
// with the telemetry plane off and at a 10 ms period, timed end to end
// (best of kReps to shed scheduler noise). Prints BENCH_OBS_SAMPLER_*
// lines plus the relative overhead; the documented budget is <= 5%.
double time_checkpoint_s(unsigned sample_ms) {
  Config cfg;
  cfg.chunk_size = 1 * MiB;
  cfg.pool_size = 8 * MiB;
  cfg.io_threads = 2;
  cfg.sample_ms = sample_ms;
  auto fs = Crfs::mount(std::make_shared<MemBackend>(), cfg);
  if (!fs.ok()) return 0.0;
  FuseShim shim(*fs.value(), FuseOptions{});

  constexpr int kWriters = 4;
  constexpr std::size_t kPerWriter = 32 * MiB;
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      auto h = shim.open("bench_sampler_rank" + std::to_string(w),
                         {.create = true, .truncate = true, .write = true});
      if (!h.ok()) return;
      std::vector<std::byte> buf(128 * KiB, std::byte{9});
      for (std::size_t off = 0; off < kPerWriter; off += buf.size()) {
        (void)shim.write(h.value(), buf, off);
      }
      (void)shim.fsync(h.value());
      (void)shim.close(h.value());
    });
  }
  for (auto& t : writers) t.join();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

void report_sampler_overhead() {
  constexpr int kReps = 5;
  double best_off = 1e30, best_on = 1e30;
  for (int i = 0; i < kReps; ++i) {
    best_off = std::min(best_off, time_checkpoint_s(0));
    best_on = std::min(best_on, time_checkpoint_s(10));
  }
  const double overhead_pct = best_off > 0 ? 100.0 * (best_on - best_off) / best_off : 0.0;
  std::printf("\n-- sampler overhead (best of %d, 4 writers x 32 MiB) --\n", kReps);
  std::printf("BENCH_OBS_SAMPLER_OFF  %.4f s\n", best_off);
  std::printf("BENCH_OBS_SAMPLER_10MS %.4f s\n", best_on);
  std::printf("BENCH_OBS_SAMPLER_OVERHEAD %.2f %% (budget <= 5%%)\n", overhead_pct);
}

// Epoch-ledger overhead guard: the same fixed multi-writer checkpoint
// with epoch tracking off (mount option `no_epochs`) and on, wrapped in
// an explicit epoch. Best of kReps, printed as BENCH_OBS_LEDGER_* lines
// with a PASS/FAIL verdict against the documented <= 5% budget
// (docs/OBSERVABILITY.md "Epoch ledger"), and written to BENCH_OBS.json
// so CI can archive the measurement.
double time_epoch_checkpoint_s(bool tracking) {
  Config cfg;
  cfg.chunk_size = 1 * MiB;
  cfg.pool_size = 8 * MiB;
  cfg.io_threads = 2;
  cfg.epoch_tracking = tracking;
  auto fs = Crfs::mount(std::make_shared<MemBackend>(), cfg);
  if (!fs.ok()) return 0.0;
  FuseShim shim(*fs.value(), FuseOptions{});

  constexpr int kWriters = 4;
  constexpr std::size_t kPerWriter = 32 * MiB;
  const auto t0 = std::chrono::steady_clock::now();
  if (tracking) (void)fs.value()->epoch_begin("bench");
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      auto h = shim.open("bench_ledger_rank" + std::to_string(w),
                         {.create = true, .truncate = true, .write = true});
      if (!h.ok()) return;
      std::vector<std::byte> buf(128 * KiB, std::byte{9});
      for (std::size_t off = 0; off < kPerWriter; off += buf.size()) {
        (void)shim.write(h.value(), buf, off);
      }
      (void)shim.fsync(h.value());
      (void)shim.close(h.value());
    });
  }
  for (auto& t : writers) t.join();
  if (tracking) (void)fs.value()->epoch_end();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

bool report_ledger_overhead() {
  constexpr int kReps = 5;
  constexpr double kBudgetPct = 5.0;
  double best_off = 1e30, best_on = 1e30;
  for (int i = 0; i < kReps; ++i) {
    best_off = std::min(best_off, time_epoch_checkpoint_s(false));
    best_on = std::min(best_on, time_epoch_checkpoint_s(true));
  }
  const double overhead_pct = best_off > 0 ? 100.0 * (best_on - best_off) / best_off : 0.0;
  const bool pass = overhead_pct <= kBudgetPct;
  std::printf("\n-- epoch ledger overhead (best of %d, 4 writers x 32 MiB) --\n", kReps);
  std::printf("BENCH_OBS_LEDGER_OFF %.4f s\n", best_off);
  std::printf("BENCH_OBS_LEDGER_ON  %.4f s\n", best_on);
  std::printf("BENCH_OBS_LEDGER_OVERHEAD %.2f %% (budget <= %.0f%%)\n", overhead_pct,
              kBudgetPct);
  std::printf("BENCH_OBS_LEDGER_GUARD %s\n", pass ? "PASS" : "FAIL");
  if (std::FILE* f = std::fopen("BENCH_OBS.json", "w")) {
    std::fprintf(f,
                 "{\"ledger_off_s\":%.6f,\"ledger_on_s\":%.6f,"
                 "\"ledger_overhead_pct\":%.3f,\"budget_pct\":%.1f,"
                 "\"guard\":\"%s\"}\n",
                 best_off, best_on, overhead_pct, kBudgetPct, pass ? "PASS" : "FAIL");
    std::fclose(f);
    std::printf("wrote BENCH_OBS.json\n");
  }
  return pass;
}

// Journal + SLO write-path overhead guard: the same fixed multi-writer
// checkpoint with the sampler on (10 ms) in both runs and, on the ON
// side, journal=<dir> plus SLO burn-rate tracking added. The journal
// only ever sees cold-path appends (sampler tick, events), so what it
// adds on top of an already-sampling mount must stay within the
// documented <= 5% budget (docs/OBSERVABILITY.md "Durable journal"). Printed as BENCH_OBS_JOURNAL_* lines and written
// to BENCH_JOURNAL.json for CI to archive and bench_regress.py to diff.
double time_journal_checkpoint_s(bool journaled) {
  Config cfg;
  cfg.chunk_size = 1 * MiB;
  cfg.pool_size = 8 * MiB;
  cfg.io_threads = 2;
  cfg.sample_ms = 10;  // both sides sample; the delta isolates journal+slo
  std::string dir;
  if (journaled) {
    dir = std::filesystem::temp_directory_path().string() + "/crfs_bench_journal";
    std::filesystem::remove_all(dir);
    cfg.journal_dir = dir;
    cfg.slo_lag_ms = 1000;  // quiescent targets: track burn, never breach
    cfg.slo_stall_pct = 90;
  }
  auto fs = Crfs::mount(std::make_shared<MemBackend>(), cfg);
  if (!fs.ok()) return 0.0;
  FuseShim shim(*fs.value(), FuseOptions{});

  constexpr int kWriters = 4;
  constexpr std::size_t kPerWriter = 32 * MiB;
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      auto h = shim.open("bench_journal_rank" + std::to_string(w),
                         {.create = true, .truncate = true, .write = true});
      if (!h.ok()) return;
      std::vector<std::byte> buf(128 * KiB, std::byte{9});
      for (std::size_t off = 0; off < kPerWriter; off += buf.size()) {
        (void)shim.write(h.value(), buf, off);
      }
      (void)shim.fsync(h.value());
      (void)shim.close(h.value());
    });
  }
  for (auto& t : writers) t.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  fs.value().reset();  // stop sampler + journal before deleting the dir
  if (!dir.empty()) std::filesystem::remove_all(dir);
  return secs;
}

bool report_journal_overhead() {
  constexpr int kReps = 5;
  constexpr double kBudgetPct = 5.0;
  double best_off = 1e30, best_on = 1e30;
  for (int i = 0; i < kReps; ++i) {
    best_off = std::min(best_off, time_journal_checkpoint_s(false));
    best_on = std::min(best_on, time_journal_checkpoint_s(true));
  }
  const double overhead_pct = best_off > 0 ? 100.0 * (best_on - best_off) / best_off : 0.0;
  const bool pass = overhead_pct <= kBudgetPct;
  std::printf("\n-- journal+slo overhead (best of %d, 4 writers x 32 MiB) --\n", kReps);
  std::printf("BENCH_OBS_JOURNAL_OFF %.4f s\n", best_off);
  std::printf("BENCH_OBS_JOURNAL_ON  %.4f s\n", best_on);
  std::printf("BENCH_OBS_JOURNAL_OVERHEAD %.2f %% (budget <= %.0f%%)\n", overhead_pct,
              kBudgetPct);
  std::printf("BENCH_OBS_JOURNAL_GUARD %s\n", pass ? "PASS" : "FAIL");
  if (std::FILE* f = std::fopen("BENCH_JOURNAL.json", "w")) {
    std::fprintf(f,
                 "{\"journal_off_s\":%.6f,\"journal_on_s\":%.6f,"
                 "\"journal_overhead_pct\":%.3f,\"budget_pct\":%.1f,"
                 "\"guard\":\"%s\"}\n",
                 best_off, best_on, overhead_pct, kBudgetPct, pass ? "PASS" : "FAIL");
    std::fclose(f);
    std::printf("wrote BENCH_JOURNAL.json\n");
  }
  return pass;
}

// Controller idle-overhead guard: the same fixed multi-writer checkpoint
// with the sampler on (10 ms) and the feedback controller off vs on. On
// a healthy MemBackend pipeline the conservative rule thresholds never
// trip, so this measures the *quiescent* loop — per-tick rule evaluation
// on the sampler thread, zero decisions — which is the cost every
// controller=on mount pays. Printed as BENCH_CONTROL_* lines with a
// PASS/FAIL verdict against the <= 5% budget and written to
// BENCH_CONTROL.json for CI to archive.
double time_control_checkpoint_s(bool controller) {
  Config cfg;
  cfg.chunk_size = 1 * MiB;
  cfg.pool_size = 8 * MiB;
  cfg.io_threads = 2;
  cfg.sample_ms = 10;
  cfg.controller = controller;
  auto fs = Crfs::mount(std::make_shared<MemBackend>(), cfg);
  if (!fs.ok()) return 0.0;
  FuseShim shim(*fs.value(), FuseOptions{});

  constexpr int kWriters = 4;
  constexpr std::size_t kPerWriter = 32 * MiB;
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      auto h = shim.open("bench_control_rank" + std::to_string(w),
                         {.create = true, .truncate = true, .write = true});
      if (!h.ok()) return;
      std::vector<std::byte> buf(128 * KiB, std::byte{9});
      for (std::size_t off = 0; off < kPerWriter; off += buf.size()) {
        (void)shim.write(h.value(), buf, off);
      }
      (void)shim.fsync(h.value());
      (void)shim.close(h.value());
    });
  }
  for (auto& t : writers) t.join();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

bool report_control_overhead() {
  constexpr int kReps = 5;
  constexpr double kBudgetPct = 5.0;
  double best_off = 1e30, best_on = 1e30;
  for (int i = 0; i < kReps; ++i) {
    best_off = std::min(best_off, time_control_checkpoint_s(false));
    best_on = std::min(best_on, time_control_checkpoint_s(true));
  }
  const double overhead_pct = best_off > 0 ? 100.0 * (best_on - best_off) / best_off : 0.0;
  const bool pass = overhead_pct <= kBudgetPct;
  std::printf("\n-- quiescent controller overhead (best of %d, 4 writers x 32 MiB) --\n",
              kReps);
  std::printf("BENCH_CONTROL_OFF %.4f s\n", best_off);
  std::printf("BENCH_CONTROL_ON  %.4f s\n", best_on);
  std::printf("BENCH_CONTROL_OVERHEAD %.2f %% (budget <= %.0f%%)\n", overhead_pct,
              kBudgetPct);
  std::printf("BENCH_CONTROL_GUARD %s\n", pass ? "PASS" : "FAIL");
  if (std::FILE* f = std::fopen("BENCH_CONTROL.json", "w")) {
    std::fprintf(f,
                 "{\"control_off_s\":%.6f,\"control_on_s\":%.6f,"
                 "\"control_overhead_pct\":%.3f,\"budget_pct\":%.1f,"
                 "\"guard\":\"%s\"}\n",
                 best_off, best_on, overhead_pct, kBudgetPct, pass ? "PASS" : "FAIL");
    std::fclose(f);
    std::printf("wrote BENCH_CONTROL.json\n");
  }
  return pass;
}

// Causal-tracing overhead guard: the same fixed multi-writer checkpoint
// with enable_tracing off vs on. Tracing on means every write carries a
// span + trace id, every chunk a causal chain, and the IO workers
// retro-record queue/submit/pwrite spans — the full observability tax of
// `crfsctl trace`/`crfsctl slow` forensics. Printed as BENCH_OBS_TRACE_*
// lines with a PASS/FAIL verdict against the <= 5% budget
// (docs/OBSERVABILITY.md "Causal request tracing") and written to
// BENCH_TRACE.json for CI to archive.
double time_trace_checkpoint_s(bool tracing) {
  Config cfg;
  cfg.chunk_size = 1 * MiB;
  cfg.pool_size = 8 * MiB;
  cfg.io_threads = 2;
  cfg.enable_tracing = tracing;
  auto fs = Crfs::mount(std::make_shared<MemBackend>(), cfg);
  if (!fs.ok()) return 0.0;
  FuseShim shim(*fs.value(), FuseOptions{});

  constexpr int kWriters = 4;
  constexpr std::size_t kPerWriter = 32 * MiB;
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      auto h = shim.open("bench_trace_rank" + std::to_string(w),
                         {.create = true, .truncate = true, .write = true});
      if (!h.ok()) return;
      std::vector<std::byte> buf(128 * KiB, std::byte{9});
      for (std::size_t off = 0; off < kPerWriter; off += buf.size()) {
        (void)shim.write(h.value(), buf, off);
      }
      (void)shim.fsync(h.value());
      (void)shim.close(h.value());
    });
  }
  for (auto& t : writers) t.join();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

bool report_trace_overhead() {
  constexpr int kReps = 5;
  constexpr double kBudgetPct = 5.0;
  double best_off = 1e30, best_on = 1e30;
  for (int i = 0; i < kReps; ++i) {
    best_off = std::min(best_off, time_trace_checkpoint_s(false));
    best_on = std::min(best_on, time_trace_checkpoint_s(true));
  }
  const double overhead_pct = best_off > 0 ? 100.0 * (best_on - best_off) / best_off : 0.0;
  const bool pass = overhead_pct <= kBudgetPct;
  std::printf("\n-- causal tracing overhead (best of %d, 4 writers x 32 MiB) --\n",
              kReps);
  std::printf("BENCH_OBS_TRACE_OFF %.4f s\n", best_off);
  std::printf("BENCH_OBS_TRACE_ON  %.4f s\n", best_on);
  std::printf("BENCH_OBS_TRACE_OVERHEAD %.2f %% (budget <= %.0f%%)\n", overhead_pct,
              kBudgetPct);
  std::printf("BENCH_OBS_TRACE_GUARD %s\n", pass ? "PASS" : "FAIL");
  if (std::FILE* f = std::fopen("BENCH_TRACE.json", "w")) {
    std::fprintf(f,
                 "{\"trace_off_s\":%.6f,\"trace_on_s\":%.6f,"
                 "\"trace_overhead_pct\":%.3f,\"budget_pct\":%.1f,"
                 "\"guard\":\"%s\"}\n",
                 best_off, best_on, overhead_pct, kBudgetPct, pass ? "PASS" : "FAIL");
    std::fclose(f);
    std::printf("wrote BENCH_TRACE.json\n");
  }
  return pass;
}

}  // namespace
}  // namespace crfs

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  crfs::report_stage_latencies();
  crfs::report_sampler_overhead();
  // The guards' verdicts are advisory on developer machines (wall-clock
  // noise); CI greps BENCH_OBS_LEDGER_GUARD / BENCH_CONTROL_GUARD and
  // archives BENCH_OBS.json / BENCH_CONTROL.json.
  (void)crfs::report_ledger_overhead();
  (void)crfs::report_journal_overhead();
  (void)crfs::report_control_overhead();
  (void)crfs::report_trace_overhead();
  return 0;
}
