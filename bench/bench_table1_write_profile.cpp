// Reproduces Table I: the checkpoint write-size profile of LU.C.64
// written natively to ext3 (8 compute nodes x 8 processes; the paper
// instruments BLCR to log every write's size and duration).
//
// Two layers are checked: the WRITE PATTERN (the %-of-writes and
// %-of-data columns come from the BLCR-analogue generator alone) and the
// TIME column (per-op durations measured inside the ext3 DES under 8-way
// node contention).
#include <cstdio>

#include "bench/paper_data.h"
#include "common/table.h"
#include "sim/experiment.h"

using namespace crfs;

int main() {
  std::printf("=== Table I: Checkpoint Writing Profile (LU.C.64, write to ext3) ===\n");
  std::printf("8 nodes x 8 ppn, MVAPICH2, native ext3; per-op durations from the DES.\n\n");

  sim::ExperimentConfig cfg;
  cfg.stack = mpi::Stack::kMvapich2;
  cfg.lu_class = mpi::LuClass::kC;
  cfg.nodes = 8;
  cfg.ppn = 8;
  cfg.backend = sim::BackendKind::kExt3;
  cfg.mode = sim::FsMode::kNative;
  cfg.record_writes = true;

  const auto result = sim::run_experiment(cfg);
  const auto& hist = result.profile.histogram();

  const double ops = static_cast<double>(hist.total_ops());
  const double bytes = static_cast<double>(hist.total_bytes());
  const double secs = hist.total_seconds();

  TextTable table({"Write Size", "% Writes", "(paper)", "% Data", "(paper)",
                   "% Time", "(paper)"});
  char buf[32];
  auto pct = [&](double v, double total) {
    std::snprintf(buf, sizeof(buf), "%.2f", total > 0 ? 100.0 * v / total : 0.0);
    return std::string(buf);
  };
  auto lit = [&](double v) {
    std::snprintf(buf, sizeof(buf), "%.2f", v);
    return std::string(buf);
  };
  for (int i = 0; i < WriteSizeHistogram::kNumBuckets; ++i) {
    const auto& b = hist.buckets()[static_cast<std::size_t>(i)];
    const auto& p = bench::kTable1[static_cast<std::size_t>(i)];
    table.add_row({WriteSizeHistogram::bucket_label(i), pct(static_cast<double>(b.ops), ops),
                   lit(p.writes_pct), pct(static_cast<double>(b.bytes), bytes),
                   lit(p.data_pct), pct(b.seconds, secs), lit(p.time_pct)});
  }
  std::printf("%s\n", table.render().c_str());

  const double procs = static_cast<double>(result.profile.processes());
  std::printf("Observed: %llu write() calls by %.0f processes on a node "
              "(paper: ~7800 by 8 processes),\n"
              "%.1f MB per process image (paper: ~23 MB), node checkpoint %.1f s "
              "(paper: ~8 s).\n",
              static_cast<unsigned long long>(hist.total_ops()), procs,
              bytes / procs / static_cast<double>(MiB), result.max_rank_seconds);
  return 0;
}
