file(REMOVE_RECURSE
  "CMakeFiles/crfs_core.dir/buffer_pool.cpp.o"
  "CMakeFiles/crfs_core.dir/buffer_pool.cpp.o.d"
  "CMakeFiles/crfs_core.dir/crfs.cpp.o"
  "CMakeFiles/crfs_core.dir/crfs.cpp.o.d"
  "CMakeFiles/crfs_core.dir/io_pool.cpp.o"
  "CMakeFiles/crfs_core.dir/io_pool.cpp.o.d"
  "CMakeFiles/crfs_core.dir/mount_options.cpp.o"
  "CMakeFiles/crfs_core.dir/mount_options.cpp.o.d"
  "CMakeFiles/crfs_core.dir/posix_api.cpp.o"
  "CMakeFiles/crfs_core.dir/posix_api.cpp.o.d"
  "CMakeFiles/crfs_core.dir/work_queue.cpp.o"
  "CMakeFiles/crfs_core.dir/work_queue.cpp.o.d"
  "libcrfs_core.a"
  "libcrfs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crfs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
