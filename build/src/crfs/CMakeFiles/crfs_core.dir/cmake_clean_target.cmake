file(REMOVE_RECURSE
  "libcrfs_core.a"
)
