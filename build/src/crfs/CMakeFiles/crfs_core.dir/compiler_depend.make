# Empty compiler generated dependencies file for crfs_core.
# This may be replaced when dependencies are built.
