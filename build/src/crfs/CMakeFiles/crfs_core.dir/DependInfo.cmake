
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crfs/buffer_pool.cpp" "src/crfs/CMakeFiles/crfs_core.dir/buffer_pool.cpp.o" "gcc" "src/crfs/CMakeFiles/crfs_core.dir/buffer_pool.cpp.o.d"
  "/root/repo/src/crfs/crfs.cpp" "src/crfs/CMakeFiles/crfs_core.dir/crfs.cpp.o" "gcc" "src/crfs/CMakeFiles/crfs_core.dir/crfs.cpp.o.d"
  "/root/repo/src/crfs/io_pool.cpp" "src/crfs/CMakeFiles/crfs_core.dir/io_pool.cpp.o" "gcc" "src/crfs/CMakeFiles/crfs_core.dir/io_pool.cpp.o.d"
  "/root/repo/src/crfs/mount_options.cpp" "src/crfs/CMakeFiles/crfs_core.dir/mount_options.cpp.o" "gcc" "src/crfs/CMakeFiles/crfs_core.dir/mount_options.cpp.o.d"
  "/root/repo/src/crfs/posix_api.cpp" "src/crfs/CMakeFiles/crfs_core.dir/posix_api.cpp.o" "gcc" "src/crfs/CMakeFiles/crfs_core.dir/posix_api.cpp.o.d"
  "/root/repo/src/crfs/work_queue.cpp" "src/crfs/CMakeFiles/crfs_core.dir/work_queue.cpp.o" "gcc" "src/crfs/CMakeFiles/crfs_core.dir/work_queue.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/backend/CMakeFiles/crfs_backend.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/crfs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
