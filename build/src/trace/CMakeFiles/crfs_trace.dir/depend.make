# Empty dependencies file for crfs_trace.
# This may be replaced when dependencies are built.
