
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/block_trace.cpp" "src/trace/CMakeFiles/crfs_trace.dir/block_trace.cpp.o" "gcc" "src/trace/CMakeFiles/crfs_trace.dir/block_trace.cpp.o.d"
  "/root/repo/src/trace/write_recorder.cpp" "src/trace/CMakeFiles/crfs_trace.dir/write_recorder.cpp.o" "gcc" "src/trace/CMakeFiles/crfs_trace.dir/write_recorder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/crfs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
