file(REMOVE_RECURSE
  "CMakeFiles/crfs_trace.dir/block_trace.cpp.o"
  "CMakeFiles/crfs_trace.dir/block_trace.cpp.o.d"
  "CMakeFiles/crfs_trace.dir/write_recorder.cpp.o"
  "CMakeFiles/crfs_trace.dir/write_recorder.cpp.o.d"
  "libcrfs_trace.a"
  "libcrfs_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crfs_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
