file(REMOVE_RECURSE
  "libcrfs_trace.a"
)
