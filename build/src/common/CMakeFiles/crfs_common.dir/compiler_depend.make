# Empty compiler generated dependencies file for crfs_common.
# This may be replaced when dependencies are built.
