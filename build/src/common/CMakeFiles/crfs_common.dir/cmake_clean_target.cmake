file(REMOVE_RECURSE
  "libcrfs_common.a"
)
