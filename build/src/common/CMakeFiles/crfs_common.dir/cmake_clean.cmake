file(REMOVE_RECURSE
  "CMakeFiles/crfs_common.dir/checksum.cpp.o"
  "CMakeFiles/crfs_common.dir/checksum.cpp.o.d"
  "CMakeFiles/crfs_common.dir/histogram.cpp.o"
  "CMakeFiles/crfs_common.dir/histogram.cpp.o.d"
  "CMakeFiles/crfs_common.dir/stats.cpp.o"
  "CMakeFiles/crfs_common.dir/stats.cpp.o.d"
  "CMakeFiles/crfs_common.dir/table.cpp.o"
  "CMakeFiles/crfs_common.dir/table.cpp.o.d"
  "CMakeFiles/crfs_common.dir/units.cpp.o"
  "CMakeFiles/crfs_common.dir/units.cpp.o.d"
  "libcrfs_common.a"
  "libcrfs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crfs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
