# Empty compiler generated dependencies file for crfs_sim.
# This may be replaced when dependencies are built.
