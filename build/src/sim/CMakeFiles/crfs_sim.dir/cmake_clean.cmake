file(REMOVE_RECURSE
  "CMakeFiles/crfs_sim.dir/crfs_sim.cpp.o"
  "CMakeFiles/crfs_sim.dir/crfs_sim.cpp.o.d"
  "CMakeFiles/crfs_sim.dir/disk_model.cpp.o"
  "CMakeFiles/crfs_sim.dir/disk_model.cpp.o.d"
  "CMakeFiles/crfs_sim.dir/engine.cpp.o"
  "CMakeFiles/crfs_sim.dir/engine.cpp.o.d"
  "CMakeFiles/crfs_sim.dir/experiment.cpp.o"
  "CMakeFiles/crfs_sim.dir/experiment.cpp.o.d"
  "CMakeFiles/crfs_sim.dir/ext3_sim.cpp.o"
  "CMakeFiles/crfs_sim.dir/ext3_sim.cpp.o.d"
  "CMakeFiles/crfs_sim.dir/lustre_sim.cpp.o"
  "CMakeFiles/crfs_sim.dir/lustre_sim.cpp.o.d"
  "CMakeFiles/crfs_sim.dir/nfs_sim.cpp.o"
  "CMakeFiles/crfs_sim.dir/nfs_sim.cpp.o.d"
  "CMakeFiles/crfs_sim.dir/pvfs2_sim.cpp.o"
  "CMakeFiles/crfs_sim.dir/pvfs2_sim.cpp.o.d"
  "libcrfs_sim.a"
  "libcrfs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crfs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
