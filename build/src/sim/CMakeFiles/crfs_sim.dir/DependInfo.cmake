
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/crfs_sim.cpp" "src/sim/CMakeFiles/crfs_sim.dir/crfs_sim.cpp.o" "gcc" "src/sim/CMakeFiles/crfs_sim.dir/crfs_sim.cpp.o.d"
  "/root/repo/src/sim/disk_model.cpp" "src/sim/CMakeFiles/crfs_sim.dir/disk_model.cpp.o" "gcc" "src/sim/CMakeFiles/crfs_sim.dir/disk_model.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/sim/CMakeFiles/crfs_sim.dir/engine.cpp.o" "gcc" "src/sim/CMakeFiles/crfs_sim.dir/engine.cpp.o.d"
  "/root/repo/src/sim/experiment.cpp" "src/sim/CMakeFiles/crfs_sim.dir/experiment.cpp.o" "gcc" "src/sim/CMakeFiles/crfs_sim.dir/experiment.cpp.o.d"
  "/root/repo/src/sim/ext3_sim.cpp" "src/sim/CMakeFiles/crfs_sim.dir/ext3_sim.cpp.o" "gcc" "src/sim/CMakeFiles/crfs_sim.dir/ext3_sim.cpp.o.d"
  "/root/repo/src/sim/lustre_sim.cpp" "src/sim/CMakeFiles/crfs_sim.dir/lustre_sim.cpp.o" "gcc" "src/sim/CMakeFiles/crfs_sim.dir/lustre_sim.cpp.o.d"
  "/root/repo/src/sim/nfs_sim.cpp" "src/sim/CMakeFiles/crfs_sim.dir/nfs_sim.cpp.o" "gcc" "src/sim/CMakeFiles/crfs_sim.dir/nfs_sim.cpp.o.d"
  "/root/repo/src/sim/pvfs2_sim.cpp" "src/sim/CMakeFiles/crfs_sim.dir/pvfs2_sim.cpp.o" "gcc" "src/sim/CMakeFiles/crfs_sim.dir/pvfs2_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/crfs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/blcr/CMakeFiles/crfs_blcr.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/crfs_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/crfs_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/crfs/CMakeFiles/crfs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/backend/CMakeFiles/crfs_backend.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
