file(REMOVE_RECURSE
  "libcrfs_sim.a"
)
