file(REMOVE_RECURSE
  "CMakeFiles/crfs_blcr.dir/checkpoint_set.cpp.o"
  "CMakeFiles/crfs_blcr.dir/checkpoint_set.cpp.o.d"
  "CMakeFiles/crfs_blcr.dir/checkpoint_writer.cpp.o"
  "CMakeFiles/crfs_blcr.dir/checkpoint_writer.cpp.o.d"
  "CMakeFiles/crfs_blcr.dir/incremental.cpp.o"
  "CMakeFiles/crfs_blcr.dir/incremental.cpp.o.d"
  "CMakeFiles/crfs_blcr.dir/process_image.cpp.o"
  "CMakeFiles/crfs_blcr.dir/process_image.cpp.o.d"
  "CMakeFiles/crfs_blcr.dir/restart_reader.cpp.o"
  "CMakeFiles/crfs_blcr.dir/restart_reader.cpp.o.d"
  "libcrfs_blcr.a"
  "libcrfs_blcr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crfs_blcr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
