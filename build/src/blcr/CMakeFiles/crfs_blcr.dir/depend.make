# Empty dependencies file for crfs_blcr.
# This may be replaced when dependencies are built.
