file(REMOVE_RECURSE
  "libcrfs_blcr.a"
)
