
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/blcr/checkpoint_set.cpp" "src/blcr/CMakeFiles/crfs_blcr.dir/checkpoint_set.cpp.o" "gcc" "src/blcr/CMakeFiles/crfs_blcr.dir/checkpoint_set.cpp.o.d"
  "/root/repo/src/blcr/checkpoint_writer.cpp" "src/blcr/CMakeFiles/crfs_blcr.dir/checkpoint_writer.cpp.o" "gcc" "src/blcr/CMakeFiles/crfs_blcr.dir/checkpoint_writer.cpp.o.d"
  "/root/repo/src/blcr/incremental.cpp" "src/blcr/CMakeFiles/crfs_blcr.dir/incremental.cpp.o" "gcc" "src/blcr/CMakeFiles/crfs_blcr.dir/incremental.cpp.o.d"
  "/root/repo/src/blcr/process_image.cpp" "src/blcr/CMakeFiles/crfs_blcr.dir/process_image.cpp.o" "gcc" "src/blcr/CMakeFiles/crfs_blcr.dir/process_image.cpp.o.d"
  "/root/repo/src/blcr/restart_reader.cpp" "src/blcr/CMakeFiles/crfs_blcr.dir/restart_reader.cpp.o" "gcc" "src/blcr/CMakeFiles/crfs_blcr.dir/restart_reader.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crfs/CMakeFiles/crfs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/crfs_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/backend/CMakeFiles/crfs_backend.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/crfs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
