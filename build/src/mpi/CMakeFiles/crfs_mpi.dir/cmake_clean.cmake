file(REMOVE_RECURSE
  "CMakeFiles/crfs_mpi.dir/job.cpp.o"
  "CMakeFiles/crfs_mpi.dir/job.cpp.o.d"
  "CMakeFiles/crfs_mpi.dir/stack_model.cpp.o"
  "CMakeFiles/crfs_mpi.dir/stack_model.cpp.o.d"
  "CMakeFiles/crfs_mpi.dir/targets.cpp.o"
  "CMakeFiles/crfs_mpi.dir/targets.cpp.o.d"
  "libcrfs_mpi.a"
  "libcrfs_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crfs_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
