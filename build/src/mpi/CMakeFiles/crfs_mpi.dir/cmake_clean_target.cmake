file(REMOVE_RECURSE
  "libcrfs_mpi.a"
)
