# Empty compiler generated dependencies file for crfs_mpi.
# This may be replaced when dependencies are built.
