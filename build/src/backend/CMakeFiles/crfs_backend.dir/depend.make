# Empty dependencies file for crfs_backend.
# This may be replaced when dependencies are built.
