file(REMOVE_RECURSE
  "CMakeFiles/crfs_backend.dir/mem_backend.cpp.o"
  "CMakeFiles/crfs_backend.dir/mem_backend.cpp.o.d"
  "CMakeFiles/crfs_backend.dir/posix_backend.cpp.o"
  "CMakeFiles/crfs_backend.dir/posix_backend.cpp.o.d"
  "libcrfs_backend.a"
  "libcrfs_backend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crfs_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
