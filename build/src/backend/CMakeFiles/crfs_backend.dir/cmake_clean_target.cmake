file(REMOVE_RECURSE
  "libcrfs_backend.a"
)
