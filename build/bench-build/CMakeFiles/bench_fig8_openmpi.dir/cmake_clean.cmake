file(REMOVE_RECURSE
  "../bench/bench_fig8_openmpi"
  "../bench/bench_fig8_openmpi.pdb"
  "CMakeFiles/bench_fig8_openmpi.dir/bench_fig8_openmpi.cpp.o"
  "CMakeFiles/bench_fig8_openmpi.dir/bench_fig8_openmpi.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_openmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
