# Empty dependencies file for bench_fig8_openmpi.
# This may be replaced when dependencies are built.
