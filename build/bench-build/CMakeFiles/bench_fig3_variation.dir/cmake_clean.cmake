file(REMOVE_RECURSE
  "../bench/bench_fig3_variation"
  "../bench/bench_fig3_variation.pdb"
  "CMakeFiles/bench_fig3_variation.dir/bench_fig3_variation.cpp.o"
  "CMakeFiles/bench_fig3_variation.dir/bench_fig3_variation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
