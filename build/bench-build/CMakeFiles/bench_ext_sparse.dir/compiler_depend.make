# Empty compiler generated dependencies file for bench_ext_sparse.
# This may be replaced when dependencies are built.
