file(REMOVE_RECURSE
  "../bench/bench_ext_sparse"
  "../bench/bench_ext_sparse.pdb"
  "CMakeFiles/bench_ext_sparse.dir/bench_ext_sparse.cpp.o"
  "CMakeFiles/bench_ext_sparse.dir/bench_ext_sparse.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
