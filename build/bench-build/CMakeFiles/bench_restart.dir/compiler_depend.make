# Empty compiler generated dependencies file for bench_restart.
# This may be replaced when dependencies are built.
