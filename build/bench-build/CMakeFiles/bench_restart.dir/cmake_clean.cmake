file(REMOVE_RECURSE
  "../bench/bench_restart"
  "../bench/bench_restart.pdb"
  "CMakeFiles/bench_restart.dir/bench_restart.cpp.o"
  "CMakeFiles/bench_restart.dir/bench_restart.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_restart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
