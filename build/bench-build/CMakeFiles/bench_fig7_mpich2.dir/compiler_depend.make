# Empty compiler generated dependencies file for bench_fig7_mpich2.
# This may be replaced when dependencies are built.
