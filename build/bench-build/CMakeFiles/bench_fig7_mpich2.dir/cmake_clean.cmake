file(REMOVE_RECURSE
  "../bench/bench_fig7_mpich2"
  "../bench/bench_fig7_mpich2.pdb"
  "CMakeFiles/bench_fig7_mpich2.dir/bench_fig7_mpich2.cpp.o"
  "CMakeFiles/bench_fig7_mpich2.dir/bench_fig7_mpich2.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_mpich2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
