file(REMOVE_RECURSE
  "../bench/bench_fig5_raw_bandwidth"
  "../bench/bench_fig5_raw_bandwidth.pdb"
  "CMakeFiles/bench_fig5_raw_bandwidth.dir/bench_fig5_raw_bandwidth.cpp.o"
  "CMakeFiles/bench_fig5_raw_bandwidth.dir/bench_fig5_raw_bandwidth.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_raw_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
