# Empty dependencies file for bench_fig5_raw_bandwidth.
# This may be replaced when dependencies are built.
