file(REMOVE_RECURSE
  "../bench/bench_ext_incremental"
  "../bench/bench_ext_incremental.pdb"
  "CMakeFiles/bench_ext_incremental.dir/bench_ext_incremental.cpp.o"
  "CMakeFiles/bench_ext_incremental.dir/bench_ext_incremental.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_incremental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
