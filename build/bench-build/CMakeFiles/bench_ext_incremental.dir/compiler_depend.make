# Empty compiler generated dependencies file for bench_ext_incremental.
# This may be replaced when dependencies are built.
