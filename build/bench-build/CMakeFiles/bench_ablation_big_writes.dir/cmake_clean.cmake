file(REMOVE_RECURSE
  "../bench/bench_ablation_big_writes"
  "../bench/bench_ablation_big_writes.pdb"
  "CMakeFiles/bench_ablation_big_writes.dir/bench_ablation_big_writes.cpp.o"
  "CMakeFiles/bench_ablation_big_writes.dir/bench_ablation_big_writes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_big_writes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
