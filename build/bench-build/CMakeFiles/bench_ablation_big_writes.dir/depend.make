# Empty dependencies file for bench_ablation_big_writes.
# This may be replaced when dependencies are built.
