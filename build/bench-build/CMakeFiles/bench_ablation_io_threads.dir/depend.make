# Empty dependencies file for bench_ablation_io_threads.
# This may be replaced when dependencies are built.
