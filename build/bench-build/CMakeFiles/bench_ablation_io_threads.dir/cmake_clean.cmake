file(REMOVE_RECURSE
  "../bench/bench_ablation_io_threads"
  "../bench/bench_ablation_io_threads.pdb"
  "CMakeFiles/bench_ablation_io_threads.dir/bench_ablation_io_threads.cpp.o"
  "CMakeFiles/bench_ablation_io_threads.dir/bench_ablation_io_threads.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_io_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
