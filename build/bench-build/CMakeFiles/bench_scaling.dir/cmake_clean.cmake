file(REMOVE_RECURSE
  "../bench/bench_scaling"
  "../bench/bench_scaling.pdb"
  "CMakeFiles/bench_scaling.dir/bench_scaling.cpp.o"
  "CMakeFiles/bench_scaling.dir/bench_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
