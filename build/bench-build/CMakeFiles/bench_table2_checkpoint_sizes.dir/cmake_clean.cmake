file(REMOVE_RECURSE
  "../bench/bench_table2_checkpoint_sizes"
  "../bench/bench_table2_checkpoint_sizes.pdb"
  "CMakeFiles/bench_table2_checkpoint_sizes.dir/bench_table2_checkpoint_sizes.cpp.o"
  "CMakeFiles/bench_table2_checkpoint_sizes.dir/bench_table2_checkpoint_sizes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_checkpoint_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
