# Empty dependencies file for bench_table2_checkpoint_sizes.
# This may be replaced when dependencies are built.
