file(REMOVE_RECURSE
  "../bench/bench_fig11_cumulative"
  "../bench/bench_fig11_cumulative.pdb"
  "CMakeFiles/bench_fig11_cumulative.dir/bench_fig11_cumulative.cpp.o"
  "CMakeFiles/bench_fig11_cumulative.dir/bench_fig11_cumulative.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_cumulative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
