# Empty dependencies file for bench_table1_write_profile.
# This may be replaced when dependencies are built.
