file(REMOVE_RECURSE
  "../bench/bench_table1_write_profile"
  "../bench/bench_table1_write_profile.pdb"
  "CMakeFiles/bench_table1_write_profile.dir/bench_table1_write_profile.cpp.o"
  "CMakeFiles/bench_table1_write_profile.dir/bench_table1_write_profile.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_write_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
