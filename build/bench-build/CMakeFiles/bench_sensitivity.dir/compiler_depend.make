# Empty compiler generated dependencies file for bench_sensitivity.
# This may be replaced when dependencies are built.
