file(REMOVE_RECURSE
  "../bench/bench_fig10_block_trace"
  "../bench/bench_fig10_block_trace.pdb"
  "CMakeFiles/bench_fig10_block_trace.dir/bench_fig10_block_trace.cpp.o"
  "CMakeFiles/bench_fig10_block_trace.dir/bench_fig10_block_trace.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_block_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
