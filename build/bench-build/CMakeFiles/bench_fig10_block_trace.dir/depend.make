# Empty dependencies file for bench_fig10_block_trace.
# This may be replaced when dependencies are built.
