file(REMOVE_RECURSE
  "../bench/bench_fig9_multiplexing"
  "../bench/bench_fig9_multiplexing.pdb"
  "CMakeFiles/bench_fig9_multiplexing.dir/bench_fig9_multiplexing.cpp.o"
  "CMakeFiles/bench_fig9_multiplexing.dir/bench_fig9_multiplexing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_multiplexing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
