# Empty dependencies file for bench_fig9_multiplexing.
# This may be replaced when dependencies are built.
