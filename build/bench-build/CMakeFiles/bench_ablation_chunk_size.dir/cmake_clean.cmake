file(REMOVE_RECURSE
  "../bench/bench_ablation_chunk_size"
  "../bench/bench_ablation_chunk_size.pdb"
  "CMakeFiles/bench_ablation_chunk_size.dir/bench_ablation_chunk_size.cpp.o"
  "CMakeFiles/bench_ablation_chunk_size.dir/bench_ablation_chunk_size.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_chunk_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
