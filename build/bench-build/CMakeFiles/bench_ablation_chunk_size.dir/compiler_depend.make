# Empty compiler generated dependencies file for bench_ablation_chunk_size.
# This may be replaced when dependencies are built.
