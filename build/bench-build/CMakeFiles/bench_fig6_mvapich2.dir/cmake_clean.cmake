file(REMOVE_RECURSE
  "../bench/bench_fig6_mvapich2"
  "../bench/bench_fig6_mvapich2.pdb"
  "CMakeFiles/bench_fig6_mvapich2.dir/bench_fig6_mvapich2.cpp.o"
  "CMakeFiles/bench_fig6_mvapich2.dir/bench_fig6_mvapich2.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_mvapich2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
