file(REMOVE_RECURSE
  "../bench/bench_ext_internode"
  "../bench/bench_ext_internode.pdb"
  "CMakeFiles/bench_ext_internode.dir/bench_ext_internode.cpp.o"
  "CMakeFiles/bench_ext_internode.dir/bench_ext_internode.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_internode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
