# Empty compiler generated dependencies file for bench_ext_internode.
# This may be replaced when dependencies are built.
