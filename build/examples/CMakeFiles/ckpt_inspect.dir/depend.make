# Empty dependencies file for ckpt_inspect.
# This may be replaced when dependencies are built.
