file(REMOVE_RECURSE
  "CMakeFiles/ckpt_inspect.dir/ckpt_inspect.cpp.o"
  "CMakeFiles/ckpt_inspect.dir/ckpt_inspect.cpp.o.d"
  "ckpt_inspect"
  "ckpt_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckpt_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
