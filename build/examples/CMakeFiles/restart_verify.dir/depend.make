# Empty dependencies file for restart_verify.
# This may be replaced when dependencies are built.
