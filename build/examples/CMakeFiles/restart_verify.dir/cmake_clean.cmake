file(REMOVE_RECURSE
  "CMakeFiles/restart_verify.dir/restart_verify.cpp.o"
  "CMakeFiles/restart_verify.dir/restart_verify.cpp.o.d"
  "restart_verify"
  "restart_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/restart_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
