file(REMOVE_RECURSE
  "CMakeFiles/checkpoint_app.dir/checkpoint_app.cpp.o"
  "CMakeFiles/checkpoint_app.dir/checkpoint_app.cpp.o.d"
  "checkpoint_app"
  "checkpoint_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkpoint_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
