# Empty dependencies file for checkpoint_app.
# This may be replaced when dependencies are built.
