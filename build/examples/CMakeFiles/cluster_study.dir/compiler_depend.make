# Empty compiler generated dependencies file for cluster_study.
# This may be replaced when dependencies are built.
