file(REMOVE_RECURSE
  "CMakeFiles/cluster_study.dir/cluster_study.cpp.o"
  "CMakeFiles/cluster_study.dir/cluster_study.cpp.o.d"
  "cluster_study"
  "cluster_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
