file(REMOVE_RECURSE
  "CMakeFiles/periodic_checkpointing.dir/periodic_checkpointing.cpp.o"
  "CMakeFiles/periodic_checkpointing.dir/periodic_checkpointing.cpp.o.d"
  "periodic_checkpointing"
  "periodic_checkpointing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/periodic_checkpointing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
