# Empty dependencies file for periodic_checkpointing.
# This may be replaced when dependencies are built.
