file(REMOVE_RECURSE
  "CMakeFiles/parallel_logger.dir/parallel_logger.cpp.o"
  "CMakeFiles/parallel_logger.dir/parallel_logger.cpp.o.d"
  "parallel_logger"
  "parallel_logger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_logger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
