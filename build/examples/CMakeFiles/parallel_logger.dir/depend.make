# Empty dependencies file for parallel_logger.
# This may be replaced when dependencies are built.
