file(REMOVE_RECURSE
  "CMakeFiles/crfsctl.dir/crfsctl.cpp.o"
  "CMakeFiles/crfsctl.dir/crfsctl.cpp.o.d"
  "crfsctl"
  "crfsctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crfsctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
