# Empty compiler generated dependencies file for crfsctl.
# This may be replaced when dependencies are built.
