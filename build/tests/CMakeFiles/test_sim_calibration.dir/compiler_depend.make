# Empty compiler generated dependencies file for test_sim_calibration.
# This may be replaced when dependencies are built.
