
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_sim_calibration.cpp" "tests/CMakeFiles/test_sim_calibration.dir/test_sim_calibration.cpp.o" "gcc" "tests/CMakeFiles/test_sim_calibration.dir/test_sim_calibration.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/crfs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/crfs_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/blcr/CMakeFiles/crfs_blcr.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/crfs_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/crfs/CMakeFiles/crfs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/backend/CMakeFiles/crfs_backend.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/crfs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
