file(REMOVE_RECURSE
  "CMakeFiles/test_sim_calibration.dir/test_sim_calibration.cpp.o"
  "CMakeFiles/test_sim_calibration.dir/test_sim_calibration.cpp.o.d"
  "test_sim_calibration"
  "test_sim_calibration.pdb"
  "test_sim_calibration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
