file(REMOVE_RECURSE
  "CMakeFiles/test_sparse_checkpoint.dir/test_sparse_checkpoint.cpp.o"
  "CMakeFiles/test_sparse_checkpoint.dir/test_sparse_checkpoint.cpp.o.d"
  "test_sparse_checkpoint"
  "test_sparse_checkpoint.pdb"
  "test_sparse_checkpoint[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparse_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
