file(REMOVE_RECURSE
  "CMakeFiles/test_buffer_pool.dir/test_buffer_pool.cpp.o"
  "CMakeFiles/test_buffer_pool.dir/test_buffer_pool.cpp.o.d"
  "test_buffer_pool"
  "test_buffer_pool.pdb"
  "test_buffer_pool[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_buffer_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
