file(REMOVE_RECURSE
  "CMakeFiles/test_crfs_concurrency.dir/test_crfs_concurrency.cpp.o"
  "CMakeFiles/test_crfs_concurrency.dir/test_crfs_concurrency.cpp.o.d"
  "test_crfs_concurrency"
  "test_crfs_concurrency.pdb"
  "test_crfs_concurrency[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crfs_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
