# Empty dependencies file for test_crfs_concurrency.
# This may be replaced when dependencies are built.
