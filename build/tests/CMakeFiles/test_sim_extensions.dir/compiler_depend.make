# Empty compiler generated dependencies file for test_sim_extensions.
# This may be replaced when dependencies are built.
