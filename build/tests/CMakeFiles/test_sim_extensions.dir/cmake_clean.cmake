file(REMOVE_RECURSE
  "CMakeFiles/test_sim_extensions.dir/test_sim_extensions.cpp.o"
  "CMakeFiles/test_sim_extensions.dir/test_sim_extensions.cpp.o.d"
  "test_sim_extensions"
  "test_sim_extensions.pdb"
  "test_sim_extensions[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
