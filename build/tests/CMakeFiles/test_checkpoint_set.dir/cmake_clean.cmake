file(REMOVE_RECURSE
  "CMakeFiles/test_checkpoint_set.dir/test_checkpoint_set.cpp.o"
  "CMakeFiles/test_checkpoint_set.dir/test_checkpoint_set.cpp.o.d"
  "test_checkpoint_set"
  "test_checkpoint_set.pdb"
  "test_checkpoint_set[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_checkpoint_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
