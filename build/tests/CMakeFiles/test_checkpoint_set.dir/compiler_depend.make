# Empty compiler generated dependencies file for test_checkpoint_set.
# This may be replaced when dependencies are built.
