# Empty dependencies file for test_sim_models.
# This may be replaced when dependencies are built.
