file(REMOVE_RECURSE
  "CMakeFiles/test_sim_models.dir/test_sim_models.cpp.o"
  "CMakeFiles/test_sim_models.dir/test_sim_models.cpp.o.d"
  "test_sim_models"
  "test_sim_models.pdb"
  "test_sim_models[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
