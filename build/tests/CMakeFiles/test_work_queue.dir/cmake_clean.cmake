file(REMOVE_RECURSE
  "CMakeFiles/test_work_queue.dir/test_work_queue.cpp.o"
  "CMakeFiles/test_work_queue.dir/test_work_queue.cpp.o.d"
  "test_work_queue"
  "test_work_queue.pdb"
  "test_work_queue[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_work_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
