# Empty dependencies file for test_work_queue.
# This may be replaced when dependencies are built.
