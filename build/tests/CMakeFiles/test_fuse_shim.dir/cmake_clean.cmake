file(REMOVE_RECURSE
  "CMakeFiles/test_fuse_shim.dir/test_fuse_shim.cpp.o"
  "CMakeFiles/test_fuse_shim.dir/test_fuse_shim.cpp.o.d"
  "test_fuse_shim"
  "test_fuse_shim.pdb"
  "test_fuse_shim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuse_shim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
