# Empty compiler generated dependencies file for test_fuse_shim.
# This may be replaced when dependencies are built.
