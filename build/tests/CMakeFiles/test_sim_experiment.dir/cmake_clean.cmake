file(REMOVE_RECURSE
  "CMakeFiles/test_sim_experiment.dir/test_sim_experiment.cpp.o"
  "CMakeFiles/test_sim_experiment.dir/test_sim_experiment.cpp.o.d"
  "test_sim_experiment"
  "test_sim_experiment.pdb"
  "test_sim_experiment[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
