# Empty compiler generated dependencies file for test_crfs_model_check.
# This may be replaced when dependencies are built.
