file(REMOVE_RECURSE
  "CMakeFiles/test_crfs_model_check.dir/test_crfs_model_check.cpp.o"
  "CMakeFiles/test_crfs_model_check.dir/test_crfs_model_check.cpp.o.d"
  "test_crfs_model_check"
  "test_crfs_model_check.pdb"
  "test_crfs_model_check[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crfs_model_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
