file(REMOVE_RECURSE
  "CMakeFiles/test_posix_api.dir/test_posix_api.cpp.o"
  "CMakeFiles/test_posix_api.dir/test_posix_api.cpp.o.d"
  "test_posix_api"
  "test_posix_api.pdb"
  "test_posix_api[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_posix_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
