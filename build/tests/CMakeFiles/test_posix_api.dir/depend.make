# Empty dependencies file for test_posix_api.
# This may be replaced when dependencies are built.
