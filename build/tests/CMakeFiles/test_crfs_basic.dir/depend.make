# Empty dependencies file for test_crfs_basic.
# This may be replaced when dependencies are built.
