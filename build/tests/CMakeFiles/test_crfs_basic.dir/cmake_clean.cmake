file(REMOVE_RECURSE
  "CMakeFiles/test_crfs_basic.dir/test_crfs_basic.cpp.o"
  "CMakeFiles/test_crfs_basic.dir/test_crfs_basic.cpp.o.d"
  "test_crfs_basic"
  "test_crfs_basic.pdb"
  "test_crfs_basic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crfs_basic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
