# Empty compiler generated dependencies file for test_mpi.
# This may be replaced when dependencies are built.
