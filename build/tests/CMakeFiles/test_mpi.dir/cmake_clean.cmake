file(REMOVE_RECURSE
  "CMakeFiles/test_mpi.dir/test_mpi.cpp.o"
  "CMakeFiles/test_mpi.dir/test_mpi.cpp.o.d"
  "test_mpi"
  "test_mpi.pdb"
  "test_mpi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
