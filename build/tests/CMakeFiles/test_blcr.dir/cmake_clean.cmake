file(REMOVE_RECURSE
  "CMakeFiles/test_blcr.dir/test_blcr.cpp.o"
  "CMakeFiles/test_blcr.dir/test_blcr.cpp.o.d"
  "test_blcr"
  "test_blcr.pdb"
  "test_blcr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blcr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
