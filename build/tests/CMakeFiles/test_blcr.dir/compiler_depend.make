# Empty compiler generated dependencies file for test_blcr.
# This may be replaced when dependencies are built.
