# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_backend[1]_include.cmake")
include("/root/repo/build/tests/test_buffer_pool[1]_include.cmake")
include("/root/repo/build/tests/test_work_queue[1]_include.cmake")
include("/root/repo/build/tests/test_crfs_basic[1]_include.cmake")
include("/root/repo/build/tests/test_crfs_concurrency[1]_include.cmake")
include("/root/repo/build/tests/test_fuse_shim[1]_include.cmake")
include("/root/repo/build/tests/test_blcr[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_mpi[1]_include.cmake")
include("/root/repo/build/tests/test_sim_engine[1]_include.cmake")
include("/root/repo/build/tests/test_sim_models[1]_include.cmake")
include("/root/repo/build/tests/test_sim_experiment[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_sim_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_checkpoint_set[1]_include.cmake")
include("/root/repo/build/tests/test_crfs_model_check[1]_include.cmake")
include("/root/repo/build/tests/test_posix_api[1]_include.cmake")
include("/root/repo/build/tests/test_sim_calibration[1]_include.cmake")
include("/root/repo/build/tests/test_sparse_checkpoint[1]_include.cmake")
include("/root/repo/build/tests/test_incremental[1]_include.cmake")
