#!/usr/bin/env bash
# Builds the ThreadSanitizer preset and runs the concurrency-sensitive
# tests: test_obs (lock-free histograms, TraceRing wrap under racing
# snapshot) and test_crfs_concurrency (full pipeline under contention).
# Any data-race report fails the run (TSan exits non-zero).
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-tsan}
JOBS=${JOBS:-2}

cmake -B "$BUILD_DIR" -S . -DCRFS_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$JOBS" --target test_obs test_crfs_concurrency

export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"
"$BUILD_DIR"/tests/test_obs
"$BUILD_DIR"/tests/test_crfs_concurrency

echo "TSan: clean"
