#!/usr/bin/env bash
# Builds the ThreadSanitizer preset and runs the concurrency-sensitive
# tests: test_obs (lock-free histograms, TraceRing wrap under racing
# snapshot), test_crfs_concurrency (full pipeline under contention),
# test_epoch_ledger (EpochState handoff through WriteJobs while explicit
# epochs rotate under concurrent writers, flight-recorder refresh from IO
# threads), test_io_engine (uring submit/reap pipeline, large-write
# bypass racing queued chunks, concurrent streams over both engines), and
# test_control (knob-plane snapshot publication racing tunes, the
# controller ticking on a real sampler thread while other threads read
# the decision log), test_read_path (readahead prefetcher racing
# appending writers, flush-before-read barriers under concurrent reads),
# and test_journal (journal flusher thread racing cold-path appends, the
# SLO monitor ticking on the sampler thread, a real ThrottledBackend
# mount driving breach events from IO threads), and test_tiered (the
# background drain thread evicting staged extents while writers stage,
# stall on backpressure, and read across tiers; drain-failure retry
# racing the healing remote).
# Any data-race report fails the run (TSan exits non-zero).
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-tsan}
JOBS=${JOBS:-2}

cmake -B "$BUILD_DIR" -S . -DCRFS_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$JOBS" --target test_obs test_crfs_concurrency test_epoch_ledger test_io_engine test_control test_read_path test_journal test_tiered

export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"
"$BUILD_DIR"/tests/test_obs
"$BUILD_DIR"/tests/test_crfs_concurrency
# Death tests fork; TSan and fork-heavy gtest styles don't mix, so the
# postmortem death test is skipped here (it runs in the plain ctest job).
"$BUILD_DIR"/tests/test_epoch_ledger --gtest_filter='-PostmortemDeathTest.*'
"$BUILD_DIR"/tests/test_io_engine
"$BUILD_DIR"/tests/test_control
"$BUILD_DIR"/tests/test_read_path
# The SIGKILL crash-recovery test forks; fork + TSan don't mix, so the
# JournalCrash suite is skipped here (it runs in the plain ctest job).
"$BUILD_DIR"/tests/test_journal --gtest_filter='-JournalCrash.*'
"$BUILD_DIR"/tests/test_tiered

echo "TSan: clean"
