#!/usr/bin/env python3
"""Perf-regression sentinel: diff the BENCH_*.json documents a bench run
produced against the committed per-key tolerances in bench/baselines.json.

Each baseline entry names a bench document and, per key, one check:

    "max":    value must be <= max            (overhead budgets)
    "min":    value must be >= min            (throughput floors)
    "equals": value must equal exactly        (guard verdict strings)
    "near":   {"value": V, "abs_tol": T}      (|value - V| <= T)

A missing document or key is reported but never fatal (bench sets vary by
runner: uring-less kernels skip rows, developer machines run subsets).

Exit status: 0 unless CRFS_BENCH_STRICT=1 is set AND at least one check
failed. CI runs the soft mode by default — runner wall-clock noise makes
hard-gating percentages flaky — and flips strict on for release branches.

Usage: bench_regress.py [--baselines bench/baselines.json] [--dir DIR]
"""

import argparse
import json
import os
import sys


def check_key(doc, key, rule):
    """Returns (ok, detail) for one key's rule against one document."""
    if key not in doc:
        return None, f"key '{key}' missing from document"
    value = doc[key]
    if "equals" in rule:
        ok = value == rule["equals"]
        return ok, f"value={value!r} expected={rule['equals']!r}"
    if "max" in rule:
        ok = isinstance(value, (int, float)) and value <= rule["max"]
        return ok, f"value={value} max={rule['max']}"
    if "min" in rule:
        ok = isinstance(value, (int, float)) and value >= rule["min"]
        return ok, f"value={value} min={rule['min']}"
    if "near" in rule:
        target, tol = rule["near"]["value"], rule["near"]["abs_tol"]
        ok = isinstance(value, (int, float)) and abs(value - target) <= tol
        return ok, f"value={value} expected={target}+/-{tol}"
    return None, f"no recognized rule in {rule!r}"


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baselines", default="bench/baselines.json",
                    help="committed tolerance file (default: bench/baselines.json)")
    ap.add_argument("--dir", default=".",
                    help="directory holding the run's BENCH_*.json (default: cwd)")
    args = ap.parse_args()

    try:
        with open(args.baselines, encoding="utf-8") as f:
            baselines = json.load(f)
    except (OSError, ValueError) as e:
        print(f"BENCH_REGRESS error: cannot read {args.baselines}: {e}")
        return 2

    failed, checked, skipped = 0, 0, 0
    for name, rules in sorted(baselines.items()):
        path = os.path.join(args.dir, name)
        if not os.path.exists(path):
            print(f"BENCH_REGRESS SKIP {name} (not produced by this run)")
            skipped += len(rules)
            continue
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except ValueError as e:
            print(f"BENCH_REGRESS FAIL {name} (unparseable: {e})")
            failed += 1
            continue
        for key, rule in sorted(rules.items()):
            ok, detail = check_key(doc, key, rule)
            if ok is None:
                print(f"BENCH_REGRESS SKIP {name}:{key} ({detail})")
                skipped += 1
                continue
            checked += 1
            verdict = "PASS" if ok else "FAIL"
            print(f"BENCH_REGRESS {verdict} {name}:{key} {detail}")
            if not ok:
                failed += 1

    strict = os.environ.get("CRFS_BENCH_STRICT", "") == "1"
    mode = "strict" if strict else "advisory"
    print(f"BENCH_REGRESS SUMMARY checked={checked} failed={failed} "
          f"skipped={skipped} mode={mode}")
    if failed and strict:
        return 1
    if failed:
        print("BENCH_REGRESS note: failures are advisory; "
              "set CRFS_BENCH_STRICT=1 to gate on them")
    return 0


if __name__ == "__main__":
    sys.exit(main())
