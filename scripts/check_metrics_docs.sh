#!/usr/bin/env bash
# check_metrics_docs.sh — fail the build when the metric registry and
# docs/OBSERVABILITY.md drift apart.
#
# Registered names are every "crfs.*" string literal in src/. A literal
# ending in '.' (e.g. "crfs.knob.") is a dynamic-prefix family whose full
# names are formed at runtime; the doc must mention at least one member.
# The doc may use brace shorthand (crfs.epoch.{completed,bytes}) — it is
# expanded before comparison.
set -euo pipefail
cd "$(dirname "$0")/.."

doc=docs/OBSERVABILITY.md
fail=0

mapfile -t registered < <(grep -rhoE '"crfs\.[a-z0-9_.]+"' src/ | tr -d '"' | sort -u)

# Documented names: crfs.* tokens in the doc, brace shorthand expanded,
# sentence-final dots stripped.
mapfile -t documented < <(
  grep -ohE 'crfs\.[a-z0-9_.]+(\{[a-z0-9_,]+\})?' "$doc" |
    sed 's/\.$//' |
    while IFS= read -r tok; do
      case "$tok" in
        *\{*) eval "printf '%s\n' ${tok}" ;; # charset limited by the grep above
        *) printf '%s\n' "$tok" ;;
      esac
    done | sort -u
)

in_set() { # needle, then haystack items
  local needle=$1; shift
  local x
  for x in "$@"; do [[ $x == "$needle" ]] && return 0; done
  return 1
}

for name in "${registered[@]}"; do
  if [[ $name == *. ]]; then
    # Dynamic prefix: require at least one documented member. grep must
    # drain its whole input (no -q): with pipefail, an early-quit grep
    # SIGPIPEs printf and the pipeline reports failure despite a match.
    if ! printf '%s\n' "${documented[@]}" | grep "^${name//./\\.}[a-z0-9_]" >/dev/null; then
      echo "UNDOCUMENTED metric family: ${name}<name> (no member in $doc)"
      fail=1
    fi
  elif ! in_set "$name" "${documented[@]}"; then
    echo "UNDOCUMENTED metric: $name (registered in src/, missing from $doc)"
    fail=1
  fi
done

for name in "${documented[@]}"; do
  ok=0
  if in_set "$name" "${registered[@]}" || in_set "${name}." "${registered[@]}"; then
    ok=1
  else
    for r in "${registered[@]}"; do
      [[ $r == *. && $name == "$r"* ]] && { ok=1; break; }
    done
  fi
  if [[ $ok == 0 ]]; then
    echo "STALE doc entry: $name (in $doc, not registered in src/)"
    fail=1
  fi
done

if [[ $fail == 0 ]]; then
  echo "check_metrics_docs: ${#registered[@]} registered names all documented," \
    "${#documented[@]} documented names all registered."
fi
exit $fail
